package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"retri/internal/metrics"
	"retri/internal/trace"
)

// tinyFigure4 is the smallest sweep that still exercises parallel trials,
// both selectors and collisions worth counting.
func tinyFigure4() Figure4Config {
	cfg := DefaultFigure4Config()
	cfg.Trials = 2
	cfg.Duration = time.Second
	cfg.IDBits = []int{3}
	cfg.Selectors = []SelectorKind{SelUniform}
	return cfg
}

// TestObsDoesNotPerturbResults is the zero-perturbation guarantee: the
// figure output must be byte-identical with observability off and on, at
// sequential and parallel settings alike.
func TestObsDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	baseline, err := Figure4(tinyFigure4())
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 4} {
		cfg := tinyFigure4()
		cfg.Parallelism = parallelism
		cfg.Obs = &Obs{Metrics: metrics.NewRegistry(), Trace: &trace.Buffer{}}
		res, err := Figure4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Render(), baseline.Render(); got != want {
			t.Errorf("parallelism %d: observability changed the table:\n--- without ---\n%s--- with ---\n%s",
				parallelism, want, got)
		}
		if got, want := res.CSV(), baseline.CSV(); got != want {
			t.Errorf("parallelism %d: observability changed the CSV", parallelism)
		}
	}
}

// TestObsParallelMergeIdentical pins the capture-then-merge guarantee the
// trace package documents: per-trial tracers folded by trial index give a
// parallel run the exact metrics snapshot and event stream of a sequential
// one. Run under -race (make check) this is also the regression test for
// sharing "tracing" across parallel trials the sanctioned way.
func TestObsParallelMergeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(parallelism int) (metrics.Snapshot, []trace.Event) {
		cfg := tinyFigure4()
		cfg.Parallelism = parallelism
		buf := &trace.Buffer{}
		cfg.Obs = &Obs{Metrics: metrics.NewRegistry(), Trace: buf}
		if _, err := Figure4(cfg); err != nil {
			t.Fatal(err)
		}
		return cfg.Obs.Metrics.Snapshot(), buf.Events()
	}
	seqSnap, seqEvents := run(1)
	parSnap, parEvents := run(4)
	if !reflect.DeepEqual(seqSnap, parSnap) {
		t.Errorf("metrics snapshots diverge:\n--- sequential ---\n%+v\n--- parallel ---\n%+v", seqSnap, parSnap)
	}
	if !reflect.DeepEqual(seqEvents, parEvents) {
		t.Errorf("trace streams diverge: %d events sequential, %d parallel", len(seqEvents), len(parEvents))
	}
	if len(seqEvents) == 0 {
		t.Error("trace capture is empty")
	}
}

// TestObsSnapshotContents spot-checks the metric families the snapshot
// must carry, in particular the observed-vs-predicted collision pair.
func TestObsSnapshotContents(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := tinyFigure4()
	cfg.Parallelism = 2
	cfg.Obs = &Obs{Metrics: metrics.NewRegistry()}
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Metrics.Snapshot()

	counters := make(map[string]int64)
	for _, c := range snap.Counters {
		counters[c.Name+"|"+c.Label] += c.Value
	}
	gauges := make(map[string]float64)
	for _, g := range snap.Gauges {
		gauges[g.Name+"|"+g.Label] = g.Value
	}

	const label = "sel=uniform,bits=3"
	if got := counters["aff_truth_delivered_total|"+label]; got != res.TruthDelivered {
		t.Errorf("aff_truth_delivered_total = %d, result says %d", got, res.TruthDelivered)
	}
	if got := counters["aff_delivered_total|"+label]; got != res.AFFDelivered {
		t.Errorf("aff_delivered_total = %d, result says %d", got, res.AFFDelivered)
	}
	if counters["aff_id_collisions_observed_total|"+label] == 0 {
		t.Error("no identifier collisions observed at 3 bits under 5-way contention")
	}
	observed, okO := gauges["aff_collision_rate_observed|"+label]
	predicted, okP := gauges["aff_collision_rate_predicted|"+label]
	if !okO || !okP {
		t.Fatalf("snapshot lacks the observed/predicted pair: %v", gauges)
	}
	if observed <= 0 || predicted <= 0 {
		t.Errorf("observed %v / predicted %v collision rates should both be positive", observed, predicted)
	}
	if counters["sim_events_processed_total|"] == 0 {
		t.Error("sim event-loop stats missing")
	}
	if counters["radio_events_total|kind=sent"] == 0 {
		t.Error("radio trace bridge metrics missing")
	}

	found := false
	for _, h := range snap.Histograms {
		if h.Name == "node_energy_joules" {
			found = true
			// 4 trials x 6 nodes.
			if h.Count != int64(cfg.Trials*len(cfg.IDBits)*(cfg.Transmitters+1)) {
				t.Errorf("node_energy_joules count = %d, want %d", h.Count, cfg.Trials*(cfg.Transmitters+1))
			}
		}
	}
	if !found {
		t.Error("node_energy_joules histogram missing")
	}
}

// TestObsTraceMarkers: every trial's replayed stream is preceded by a
// trial-start marker naming the configuration.
func TestObsTraceMarkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := tinyFigure4()
	buf := &trace.Buffer{}
	cfg.Obs = &Obs{Trace: buf}
	if _, err := Figure4(cfg); err != nil {
		t.Fatal(err)
	}
	markers := 0
	for _, e := range buf.Events() {
		if e.Kind == trace.Custom && strings.HasPrefix(e.Note, "trial-start figure4 sel=uniform bits=3") {
			markers++
		}
	}
	if markers != cfg.Trials {
		t.Errorf("found %d trial-start markers, want %d", markers, cfg.Trials)
	}
}

// TestObsDisabledIsNil: a nil Obs yields no capture at all.
func TestObsDisabledIsNil(t *testing.T) {
	if obs, tracer := newTrialObs(nil); obs != nil || tracer != nil {
		t.Error("nil Obs produced a capture")
	}
	if obs, tracer := newTrialObs(&Obs{}); obs != nil || tracer != nil {
		t.Error("empty Obs produced a capture")
	}
}
