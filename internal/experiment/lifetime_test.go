package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunLifetimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := quickLifetimeConfig(1, 15*time.Second)
	res, err := RunLifetime(cfg, DefaultLifetimeSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The baseline (static 32-bit) has lifetime factor exactly 1.
	if got := res.Rows[res.Baseline].LifetimeFactor; got != 1 {
		t.Errorf("baseline factor = %v, want 1", got)
	}
	// The paper's bottom line: AFF outlives both static baselines.
	aff := res.Rows[0]
	st16, st32 := res.Rows[2], res.Rows[3]
	if aff.LifetimeFactor <= st16.LifetimeFactor || aff.LifetimeFactor <= st32.LifetimeFactor {
		t.Errorf("AFF lifetime %v should beat static16 %v and static32 %v",
			aff.LifetimeFactor, st16.LifetimeFactor, st32.LifetimeFactor)
	}
	// Cost columns populated and positive.
	for _, row := range res.Rows {
		if row.JoulesPerUsefulKbit <= 0 || row.E <= 0 {
			t.Errorf("row %s incomplete: %+v", row.Scheme.Label(), row)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "(baseline)") || !strings.Contains(out, "lifetime x") {
		t.Error("Render() incomplete")
	}
}

func TestRunLifetimeValidation(t *testing.T) {
	cfg := quickLifetimeConfig(1, 5*time.Second)
	if _, err := RunLifetime(cfg, []Scheme{AFFScheme(9, SelUniform)}); err == nil {
		t.Error("single-scheme comparison accepted")
	}
}
