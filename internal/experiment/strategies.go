package experiment

import (
	"encoding/csv"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/model"
	"retri/internal/node"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// ParseStrategies parses a comma-separated identifier-strategy list for
// the CLI; "all" selects every registered strategy in sorted order.
func ParseStrategies(s string) ([]string, error) {
	if s == "all" {
		return core.Strategies(), nil
	}
	known := make(map[string]bool)
	for _, name := range core.Strategies() {
		known[name] = true
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("experiment: unknown identifier strategy %q (have %s or all)",
				name, strings.Join(core.Strategies(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty strategy list %q", s)
	}
	return out, nil
}

// StrategiesConfig parameterizes the identifier-strategy bazaar: every
// selected strategy drives the same star workload at each transaction
// density, and the strategies are compared on measured collision rate,
// delivery, header overhead (goodput) and conformance to the Equation 4
// uniform-selection prediction — with the omniscient oracle passively
// auditing each strategy's never-misdeliver and identifier-freshness
// invariants.
type StrategiesConfig struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Strategies are the registered identifier-selection strategies
	// compared (core.Strategies lists them).
	Strategies []string
	// Densities are the concurrent-transmitter counts swept; each is the
	// T of one column of cells.
	Densities []int
	// IDBits is the identifier pool width shared by every strategy.
	IDBits int
	// PacketSize is the application payload in bytes.
	PacketSize int
	// Duration is simulated time per trial.
	Duration time.Duration
	// Trials per (strategy, density) cell.
	Trials int
	// Oracle attaches the omniscient conformance harness to every trial.
	// The wire format is instrumented either way, so the oracle is
	// strictly passive here: output is byte-identical with it on or off.
	Oracle bool
	// Params overrides the radio parameters when non-nil.
	Params *radio.Params
	// ReassemblyTimeout bounds partial-packet state, as in Figure 4.
	ReassemblyTimeout time.Duration
	// Parallelism, Obs and Hooks behave exactly as in Figure4Config.
	Parallelism int
	Obs         *Obs
	Hooks       RunHooks
}

// DefaultStrategiesConfig compares every registered strategy at the
// paper's five-transmitter density plus a sparser and a denser cell, over
// the Figure 4 workload and an 8-bit pool (wide enough that strategy
// differences, not pool exhaustion, dominate).
func DefaultStrategiesConfig() StrategiesConfig {
	return StrategiesConfig{
		Seed:              1,
		Strategies:        core.Strategies(),
		Densities:         []int{2, 5, 10},
		IDBits:            8,
		PacketSize:        80,
		Duration:          2 * time.Minute,
		Trials:            5,
		Oracle:            true,
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

// Validate rejects configurations the trial loop cannot honor.
func (cfg StrategiesConfig) Validate() error {
	if len(cfg.Strategies) == 0 || len(cfg.Densities) == 0 || cfg.Trials < 1 {
		return fmt.Errorf("experiment: degenerate strategies config (strategies=%d densities=%d trials=%d)",
			len(cfg.Strategies), len(cfg.Densities), cfg.Trials)
	}
	known := make(map[string]bool)
	for _, name := range core.Strategies() {
		known[name] = true
	}
	for _, name := range cfg.Strategies {
		if !known[name] {
			return fmt.Errorf("experiment: unknown identifier strategy %q", name)
		}
	}
	for _, t := range cfg.Densities {
		if t < 1 {
			return fmt.Errorf("experiment: strategy density %d must be positive", t)
		}
	}
	if cfg.IDBits < 1 || cfg.IDBits > core.MaxBits {
		return fmt.Errorf("experiment: strategy pool width %d outside [1, %d]", cfg.IDBits, core.MaxBits)
	}
	if cfg.PacketSize < 1 {
		return fmt.Errorf("experiment: strategies packet size %d must be positive", cfg.PacketSize)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("experiment: strategies duration %v must be positive", cfg.Duration)
	}
	return nil
}

// StrategyOutcome reports one trial.
type StrategyOutcome struct {
	// Offered counts packets the workload generators handed down.
	Offered int64
	// TruthDelivered and AFFDelivered are the sink's ground-truth and
	// identifier-keyed packet counts, as in Figure 4.
	TruthDelivered int64
	AFFDelivered   int64
	// DeliveredBits is application payload delivered at the sink; TxBits
	// is every bit any radio transmitted. Their ratio is the measured
	// goodput — each strategy's header overhead shows up here.
	DeliveredBits int64
	TxBits        int64
	// CollisionRate is 1 - AFF/Truth (identifier-only loss).
	CollisionRate float64
	// Goodput is DeliveredBits/TxBits (0 when nothing was sent).
	Goodput float64
	// Oracle is the trial's conformance report, nil unless attached.
	Oracle *oracle.Report
	// Obs is the trial's private observability capture, nil unless
	// requested.
	Obs *TrialObs
}

// DeliveryRatio is sink deliveries over offered packets.
func (o StrategyOutcome) DeliveryRatio() float64 {
	if o.Offered == 0 {
		return 0
	}
	return float64(o.AFFDelivered) / float64(o.Offered)
}

// StrategyRow aggregates one (strategy, density) cell over trials.
type StrategyRow struct {
	Strategy string
	T        int
	// Delivery, Collision and Goodput summarize the per-trial outcome
	// fields of the same names; BitsPerDelivered is on-air bits spent per
	// packet the identifier layer delivered.
	Delivery         stats.Summary
	Collision        stats.Summary
	Goodput          stats.Summary
	BitsPerDelivered stats.Summary
	// ModelRate is Equation 4's predicted collision rate for a uniform
	// selector at this pool width and density; ConformanceGap is the
	// absolute distance of the measured mean from it. Strategies that beat
	// uniform selection (listening, permutation) sit below the prediction;
	// ones that collide persistently (sequential in phase) sit above.
	ModelRate      float64
	ConformanceGap float64
	// Totals across trials.
	Offered        int64
	TruthDelivered int64
	AFFDelivered   int64
	// Oracle is the conformance report merged over trials in trial order,
	// nil unless the sweep ran with the oracle attached.
	Oracle *oracle.Report
}

// StrategiesResult is the full sweep.
type StrategiesResult struct {
	Config StrategiesConfig
	Rows   []StrategyRow
}

// Strategies runs the sweep: strategy x density x trials.
func Strategies(cfg StrategiesConfig) (StrategiesResult, error) {
	if err := cfg.Validate(); err != nil {
		return StrategiesResult{}, err
	}
	src := xrand.NewSource(cfg.Seed).Child("strategies")
	type job struct {
		strategy string
		t        int
		src      *xrand.Source
	}
	var jobs []job
	for _, strategy := range cfg.Strategies {
		for _, t := range cfg.Densities {
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{strategy, t,
					src.Child(strategy, fmt.Sprint(t), fmt.Sprint(trial))})
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (StrategyOutcome, error) {
		return RunStrategyTrial(cfg, jobs[i].strategy, jobs[i].t, jobs[i].src)
	})
	if err != nil {
		return StrategiesResult{}, err
	}
	wrapped := make([]TrialOutcome, len(outs))
	for i := range outs {
		wrapped[i].Obs = outs[i].Obs
	}
	if err := foldTrialObs(cfg.Obs, wrapped, func(i int) string {
		return fmt.Sprintf("strategies %s", strategyLabel(jobs[i].strategy, jobs[i].t))
	}); err != nil {
		return StrategiesResult{}, err
	}

	res := StrategiesResult{Config: cfg}
	type accs struct {
		row                  StrategyRow
		del, coll, good, bpp stats.Accumulator
	}
	byRow := make(map[string]*accs)
	var order []string
	for i, out := range outs {
		j := jobs[i]
		k := strategyLabel(j.strategy, j.t)
		a, ok := byRow[k]
		if !ok {
			a = &accs{row: StrategyRow{
				Strategy:  j.strategy,
				T:         j.t,
				ModelRate: model.CollisionRate(cfg.IDBits, float64(j.t)),
			}}
			byRow[k] = a
			order = append(order, k)
		}
		a.del.Add(out.DeliveryRatio())
		a.coll.Add(out.CollisionRate)
		a.good.Add(out.Goodput)
		if out.AFFDelivered > 0 {
			a.bpp.Add(float64(out.TxBits) / float64(out.AFFDelivered))
		} else {
			a.bpp.Add(0)
		}
		a.row.Offered += out.Offered
		a.row.TruthDelivered += out.TruthDelivered
		a.row.AFFDelivered += out.AFFDelivered
		if out.Oracle != nil {
			if a.row.Oracle == nil {
				a.row.Oracle = &oracle.Report{}
			}
			a.row.Oracle.Merge(*out.Oracle)
		}
	}
	for _, k := range order {
		a := byRow[k]
		a.row.Delivery = a.del.Summary()
		a.row.Collision = a.coll.Summary()
		a.row.Goodput = a.good.Summary()
		a.row.BitsPerDelivered = a.bpp.Summary()
		a.row.ConformanceGap = math.Abs(a.row.Collision.Mean - a.row.ModelRate)
		res.Rows = append(res.Rows, a.row)
	}
	return res, nil
}

func strategyLabel(strategy string, t int) string {
	return fmt.Sprintf("strategy=%s,t=%d", strategy, t)
}

// RunStrategyTrial executes one trial of one (strategy, density) cell: t
// transmitters, each drawing identifiers with the named strategy, stream
// packets at a single receiver for cfg.Duration; the receiver runs the
// reassembler under test beside the ground-truth reassembler, exactly as
// in Figure 4, and the oracle (when attached) audits every frame and
// delivery against omniscient ground truth.
func RunStrategyTrial(cfg StrategiesConfig, strategy string, t int, src *xrand.Source) (StrategyOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}

	const receiverID radio.NodeID = 0
	med := radio.NewMedium(eng, radio.FullMesh{}, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}

	affCfg := aff.Config{
		Space:             core.MustSpace(cfg.IDBits),
		MTU:               params.MTU,
		Instrument:        true,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
	}
	sp := newTrialSpan(cfg.Obs, trialObs, affCfg, eng.Now)
	if sp != nil {
		med.SetFateObserver(sp)
	}

	var orc *oracle.Oracle
	if cfg.Oracle {
		var err error
		orc, err = oracle.New(oracle.Config{AFF: affCfg, Now: eng.Now})
		if err != nil {
			return StrategyOutcome{}, err
		}
		med.SetFrameObserver(orc)
	}
	audit := func(id radio.NodeID) func(aff.Packet) {
		if orc == nil {
			return nil
		}
		return func(p aff.Packet) { orc.VerifyDelivered(id, p) }
	}

	makeSel := func(label string, est interface{ Window() int }) (core.Selector, error) {
		return core.NewStrategy(strategy, core.StrategyConfig{
			Space:  affCfg.Space,
			RNG:    src.Stream("sel", label),
			Window: est.Window,
			Now:    eng.Now,
		})
	}

	// Receiver: reassembler under test + ground truth side channel.
	rxRadio := med.MustAttach(receiverID)
	truth := aff.NewTruthReassembler(affCfg, eng.Now)
	rxEst := makeEstimator(EstEMA, eng)
	rxSel, err := makeSel("rx", rxEst)
	if err != nil {
		return StrategyOutcome{}, err
	}
	rxOpts := node.AFFOptions{
		Estimator: rxEst,
		Truth:     truth,
		OnDeliver: audit(receiverID),
	}
	if sp != nil {
		rxOpts.Span = sp
	}
	rx, err := node.NewAFF(rxRadio, affCfg, rxSel, rxOpts)
	if err != nil {
		return StrategyOutcome{}, err
	}

	radios := []*radio.Radio{rxRadio}
	var gens []*workload.Continuous
	for i := 1; i <= t; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		txRadio := med.MustAttach(id)
		radios = append(radios, txRadio)
		est := makeEstimator(EstEMA, eng)
		sel, err := makeSel(label, est)
		if err != nil {
			return StrategyOutcome{}, err
		}
		txOpts := node.AFFOptions{
			Estimator: est,
			// Listening is the only built-in strategy with learned state;
			// observing one's own draws mirrors the Figure 4 setup.
			ObserveOwn: strategy == "listening",
			OnDeliver:  audit(id),
		}
		if sp != nil {
			txOpts.Span = sp
		}
		d, err := node.NewAFF(txRadio, affCfg, sel, txOpts)
		if err != nil {
			return StrategyOutcome{}, err
		}
		gen := workload.NewContinuousMixed(eng, d, []int{cfg.PacketSize}, 0, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		gens = append(gens, gen)
	}

	eng.Run()

	out := StrategyOutcome{
		TruthDelivered: truth.Stats().Delivered,
		AFFDelivered:   rx.Reassembler().Stats().Delivered,
		DeliveredBits:  rx.Reassembler().Stats().DeliveredBits,
	}
	for _, g := range gens {
		out.Offered += g.Stats().PacketsOffered
	}
	for _, r := range radios {
		out.TxBits += r.Meter().TxBits
	}
	if out.TruthDelivered > 0 {
		lost := out.TruthDelivered - out.AFFDelivered
		if lost < 0 {
			lost = 0
		}
		out.CollisionRate = float64(lost) / float64(out.TruthDelivered)
	}
	if out.TxBits > 0 {
		out.Goodput = float64(out.DeliveredBits) / float64(out.TxBits)
	}
	if orc != nil {
		rep := orc.Report()
		out.Oracle = &rep
	}

	if trialObs != nil && trialObs.Metrics != nil {
		label := strategyLabel(strategy, t)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectAFF(trialObs.Metrics, label, rx.Reassembler().Stats(), truth.Stats(),
			model.CollisionRate(cfg.IDBits, float64(t)))
		if out.Oracle != nil {
			out.Oracle.SnapshotInto(trialObs.Metrics, label)
		}
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// Render renders the sweep as a table, one row per cell, with the oracle
// conformance section when the oracle ran.
func (res StrategiesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Identifier strategies (%d-bit pool, %v x %d trials, %d-byte packets)\n",
		res.Config.IDBits, res.Config.Duration, res.Config.Trials, res.Config.PacketSize)
	fmt.Fprintf(&b, "%-12s %3s %18s %18s %9s %8s %8s %9s\n",
		"strategy", "T", "delivery", "collide", "eq4", "|gap|", "goodput", "bits/pkt")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-12s %3d %9.4f ± %.4f %9.4f ± %.4f %9.4f %8.4f %8.4f %9.0f\n",
			r.Strategy, r.T,
			r.Delivery.Mean, r.Delivery.StdDev,
			r.Collision.Mean, r.Collision.StdDev,
			r.ModelRate, r.ConformanceGap,
			r.Goodput.Mean, r.BitsPerDelivered.Mean)
	}
	hasOracle := false
	for _, r := range res.Rows {
		if r.Oracle != nil {
			hasOracle = true
			break
		}
	}
	if hasOracle {
		fmt.Fprintf(&b, "\nOracle conformance (omniscient ground truth)\n")
		fmt.Fprintf(&b, "%-12s %3s %9s %8s %9s %12s\n",
			"strategy", "T", "audited", "collide", "abandoned", "violations")
		for _, r := range res.Rows {
			o := r.Oracle
			if o == nil {
				continue
			}
			fmt.Fprintf(&b, "%-12s %3d %9d %8d %9d %12s\n",
				r.Strategy, r.T,
				o.PacketsAudited, o.CollisionEvents, o.TransactionsAbandoned,
				fmt.Sprintf("%d/%d/%d", o.ConservationViolations, o.Misdeliveries, o.FreshnessViolations))
		}
	}
	return b.String()
}

// CSV renders the sweep for plotting: one record per cell.
func (res StrategiesResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"strategy", "t", "id_bits",
		"delivery", "delivery_stddev", "collision_rate", "collision_stddev",
		"model_rate", "conformance_gap", "goodput", "bits_per_delivered",
		"offered", "truth_delivered", "aff_delivered",
		"oracle_collisions", "oracle_conservation", "oracle_misdeliveries", "oracle_freshness",
		"trials"})
	for _, r := range res.Rows {
		oc, ocons, omis, ofresh := "", "", "", ""
		if r.Oracle != nil {
			oc = strconv.FormatInt(r.Oracle.CollisionEvents, 10)
			ocons = strconv.FormatInt(r.Oracle.ConservationViolations, 10)
			omis = strconv.FormatInt(r.Oracle.Misdeliveries, 10)
			ofresh = strconv.FormatInt(r.Oracle.FreshnessViolations, 10)
		}
		_ = w.Write([]string{r.Strategy, strconv.Itoa(r.T), strconv.Itoa(res.Config.IDBits),
			formatFloat(r.Delivery.Mean), formatFloat(r.Delivery.StdDev),
			formatFloat(r.Collision.Mean), formatFloat(r.Collision.StdDev),
			formatFloat(r.ModelRate), formatFloat(r.ConformanceGap),
			formatFloat(r.Goodput.Mean), formatFloat(r.BitsPerDelivered.Mean),
			strconv.FormatInt(r.Offered, 10), strconv.FormatInt(r.TruthDelivered, 10),
			strconv.FormatInt(r.AFFDelivered, 10),
			oc, ocons, omis, ofresh,
			strconv.Itoa(r.Delivery.N),
		})
	}
	w.Flush()
	return sb.String()
}
