package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/xrand"
)

func quickChurnConfig() ChurnConfig {
	cfg := DefaultChurnConfig()
	cfg.Nodes = 4
	cfg.Duration = 60 * time.Second
	cfg.Lifetime = 15 * time.Second
	cfg.DataInterval = time.Second
	return cfg
}

func TestRunChurnTrialAFF(t *testing.T) {
	out, err := RunChurnTrial(quickChurnConfig(), "aff", xrand.NewSource(1).Child("aff"))
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered == 0 {
		t.Fatal("sink delivered nothing")
	}
	if out.ControlBits != 0 {
		t.Errorf("AFF ControlBits = %d, want 0", out.ControlBits)
	}
	if out.SendFailures != 0 {
		t.Errorf("AFF SendFailures = %d, want 0 (no configuration wait)", out.SendFailures)
	}
	if e := out.E(); e <= 0 || e >= 1 {
		t.Errorf("E = %v", e)
	}
}

func TestRunChurnTrialDynaddr(t *testing.T) {
	out, err := RunChurnTrial(quickChurnConfig(), "dynaddr", xrand.NewSource(1).Child("dyn"))
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered == 0 {
		t.Fatal("sink delivered nothing")
	}
	if out.ControlBits == 0 {
		t.Error("dynaddr spent no control bits despite churn")
	}
	if out.Rejoins == 0 {
		t.Error("no churn occurred in 60s with 15s lifetimes")
	}
}

func TestRunChurnTrialUnknownScheme(t *testing.T) {
	if _, err := RunChurnTrial(quickChurnConfig(), "ipv6", xrand.NewSource(1).Child("x")); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestAblationDynAddrChurnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickChurnConfig()
	res, err := AblationDynAddrChurn(cfg, []time.Duration{10 * time.Second, 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// AFF beats dynaddr at every lifetime (it pays no control overhead
	// and never waits for configuration).
	for i := range res.Lifetimes {
		affE := res.Outcomes["aff"][i].E()
		dynE := res.Outcomes["dynaddr"][i].E()
		if affE <= dynE {
			t.Errorf("lifetime %v: AFF E=%.4f should beat dynaddr E=%.4f",
				res.Lifetimes[i], affE, dynE)
		}
	}
	// More churn, more control traffic.
	if res.Outcomes["dynaddr"][0].ControlBits <= res.Outcomes["dynaddr"][1].ControlBits {
		t.Errorf("control bits should grow with churn: 10s -> %d, 45s -> %d",
			res.Outcomes["dynaddr"][0].ControlBits, res.Outcomes["dynaddr"][1].ControlBits)
	}
	out := res.Render()
	if !strings.Contains(out, "dynaddr E") || !strings.Contains(out, "control bits") {
		t.Error("Render() missing columns")
	}
}
