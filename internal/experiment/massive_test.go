package experiment

import (
	"strings"
	"testing"
	"time"
)

func massiveTestConfig() MassiveConfig {
	cfg := DefaultMassiveConfig()
	cfg.Populations = []int{1_500, 6_000}
	cfg.Duration = 2 * time.Second
	cfg.NodesPerTile = 300
	cfg.AuditEvery = 4
	return cfg
}

// TestMassiveDeterminism: the sweep's stdout surfaces (Render and CSV) must
// be byte-identical at every worker count — the acceptance contract for the
// sharded core. Wall-clock lives only in PerfNote, which is exempt.
func TestMassiveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cfg := massiveTestConfig()
	cfg.Parallelism = 1
	ref, err := Massive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		cfg.Parallelism = workers
		got, err := Massive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != got.Render() {
			t.Errorf("parallel=%d: Render diverged\n--- parallel=1:\n%s--- parallel=%d:\n%s",
				workers, ref.Render(), workers, got.Render())
		}
		if ref.CSV() != got.CSV() {
			t.Errorf("parallel=%d: CSV diverged", workers)
		}
	}
}

// TestMassiveWidthTracksT: the paper's thesis as an assertion. Across a 4x
// population jump at constant density, the adaptive arm's achieved width
// must stay within one bit of itself, far from scaling with N, and the
// sweep must pass its own audit gate.
func TestMassiveWidthTracksT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cfg := massiveTestConfig()
	cfg.Parallelism = 4
	res, err := Massive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	var widths []float64
	for _, r := range res.Rows {
		if r.Counters.Offered == 0 {
			t.Fatalf("%s: no transactions offered", r.Label())
		}
		switch r.Policy {
		case WidthFixed:
			if w := r.Counters.MeanWidth(); w != float64(cfg.FixedBits) {
				t.Errorf("%s: fixed arm width %g, want %d", r.Label(), w, cfg.FixedBits)
			}
		case WidthAdaptiveTurnover:
			widths = append(widths, r.Counters.MeanWidth())
		}
	}
	if len(widths) != 2 {
		t.Fatalf("expected 2 adaptive cells, got %d", len(widths))
	}
	spread := widths[1] - widths[0]
	if spread < 0 {
		spread = -spread
	}
	if spread > 1.5 {
		t.Errorf("adaptive width moved %.2f bits across a 4x population jump (widths %v); width should track T, not N",
			spread, widths)
	}
}

// TestMassiveValidate rejects the configs the sweep cannot run.
func TestMassiveValidate(t *testing.T) {
	bad := []func(*MassiveConfig){
		func(c *MassiveConfig) { c.Populations = nil },
		func(c *MassiveConfig) { c.Trials = 0 },
		func(c *MassiveConfig) { c.Duration = 0 },
		func(c *MassiveConfig) { c.Policies = []WidthPolicyKind{WidthAdaptive} },
		func(c *MassiveConfig) { c.PacketSize = 0 },
		func(c *MassiveConfig) { c.Populations = []int{0} },
		func(c *MassiveConfig) { c.NodesPerTile = 0 },
		func(c *MassiveConfig) { c.FrameLoss = 1.5 },
	}
	for i, mut := range bad {
		cfg := DefaultMassiveConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad massive config %d accepted", i)
		}
	}
	if err := DefaultMassiveConfig().Validate(); err != nil {
		t.Errorf("default massive config rejected: %v", err)
	}
}

// TestParsePopulations covers the -nodes flag grammar.
func TestParsePopulations(t *testing.T) {
	got, err := ParsePopulations(" 100, 2000 ,30000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 2000 || got[2] != 30000 {
		t.Errorf("ParsePopulations: got %v", got)
	}
	for _, s := range []string{"", " , ", "abc", "-5", "0", "10,x"} {
		if _, err := ParsePopulations(s); err == nil {
			t.Errorf("ParsePopulations(%q) accepted", s)
		}
	}
}

// TestMassiveCSVShape: header and rows agree on column count and the CSV
// carries one line per (population, policy) cell plus the header.
func TestMassiveCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cfg := massiveTestConfig()
	cfg.Populations = []int{1_000}
	cfg.Duration = time.Second
	cfg.Parallelism = 2
	res, err := Massive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	want := 1 + len(cfg.Populations)*len(cfg.Policies)
	if len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	cols := strings.Count(lines[0], ",")
	for i, ln := range lines {
		if strings.Count(ln, ",") != cols {
			t.Errorf("CSV line %d has %d commas, header has %d", i, strings.Count(ln, ","), cols)
		}
	}
}
