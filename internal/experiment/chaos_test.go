package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"retri/internal/chaos"
	"retri/internal/metrics"
	"retri/internal/mobility"
)

// smallChaos is a sweep small enough to run repeatedly in tests while
// still covering the control and the compound worst case, both width
// arms, both modes, and the soak checkpoints.
func smallChaos() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Senders = 3
	cfg.Trials = 2
	cfg.Duration = 12 * time.Second
	cfg.Interval = 400 * time.Millisecond
	calm, cascade := chaos.Calm(), chaos.Cascade()
	cascade.Crash.MTBF = 5 * time.Second
	cfg.Profiles = []chaos.Profile{calm, cascade}
	cfg.CheckpointEvery = 2 * time.Second
	return cfg
}

func TestChaosConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ChaosConfig)
	}{
		{"zero senders", func(c *ChaosConfig) { c.Senders = 0 }},
		{"no profiles", func(c *ChaosConfig) { c.Profiles = nil }},
		{"no policies", func(c *ChaosConfig) { c.Policies = nil }},
		{"bad policy", func(c *ChaosConfig) { c.Policies = []WidthPolicyKind{"psychic"} }},
		{"negative cap", func(c *ChaosConfig) { c.MaxPartials = -1 }},
		{"negative overload", func(c *ChaosConfig) { c.Overload = -1 }},
		{"checkpoint beyond horizon", func(c *ChaosConfig) { c.CheckpointEvery = c.Duration + time.Second }},
		{"invalid profile", func(c *ChaosConfig) {
			p := chaos.Calm()
			p.Onset = 2
			c.Profiles = []chaos.Profile{p}
		}},
		{"zero range", func(c *ChaosConfig) { c.Range = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultChaosConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
	if err := DefaultChaosConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestChaosOracleCleanAcrossCells is the sweep's core safety claim:
// under every compound-fault cell — memory-cap evictions, shed retry
// budgets, overload clamps, cascades and all — the omniscient audit
// reports zero conservation, misdelivery and freshness violations, at
// the end of each trial and at every mid-run soak checkpoint.
func TestChaosOracleCleanAcrossCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Chaos(smallChaos())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*2*2 {
		t.Fatalf("rows = %d, want 8 (2 profiles x 2 policies x 2 modes)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Oracle == nil {
			t.Fatalf("%s: no oracle report — the audit must be always-on", r.Label())
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s: %v", r.Label(), err)
		}
		if r.Oracle.PacketsAudited == 0 {
			t.Errorf("%s: oracle audited nothing", r.Label())
		}
		if r.SoakViolations != 0 {
			t.Errorf("%s: %d soak checkpoint violations (first: %s)", r.Label(), r.SoakViolations, r.FirstViolation)
		}
		if r.Delivery.Mean <= 0 {
			t.Errorf("%s: nothing delivered", r.Label())
		}
	}
}

// TestChaosCalmIsQuiet pins the degradation machinery's zero-cost path:
// the calm control must never evict a partial, shed a budget, clamp a
// width or see a retry storm, and it recovers instantly after its
// (fault-free) onset marker.
func TestChaosCalmIsQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallChaos()
	cfg.Profiles = []chaos.Profile{chaos.Calm()}
	// A genuinely benign control: the 20x20 area's diagonal (~28 m) is
	// inside the 30 m radio range, so roaming senders always hear the sink
	// AND each other — no starvation and no hidden-terminal collisions —
	// and the offered load is light enough that contention never looks
	// like a loss spike to the ARQ machinery.
	cfg.Area = mobility.Area{W: 20, H: 20}
	cfg.Range = 30
	cfg.Interval = time.Second
	res, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.CapEvictions != 0 || r.BudgetShed != 0 || r.Overloads != 0 || r.Storms != 0 {
			t.Errorf("%s: degradation engaged on the control: evict=%d shed=%d clamps=%d storms=%d",
				r.Label(), r.CapEvictions, r.BudgetShed, r.Overloads, r.Storms)
		}
		if r.Recovered != r.Delivery.N {
			t.Errorf("%s: %d/%d trials delivered after the onset marker", r.Label(), r.Recovered, r.Delivery.N)
		}
		if r.PeakPartials.Mean <= 0 {
			t.Errorf("%s: peak partial occupancy never measured", r.Label())
		}
	}
}

// TestChaosParallelByteIdentical extends the parallel runner's core
// guarantee to the chaos sweep: table, CSV and folded metrics of a
// parallel run must match the sequential run exactly.
func TestChaosParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	runOne := func(parallelism int) (ChaosResult, metrics.Snapshot) {
		cfg := smallChaos()
		cfg.Parallelism = parallelism
		reg := metrics.NewRegistry()
		cfg.Obs = &Obs{Metrics: reg}
		res, err := Chaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Snapshot()
	}
	seq, seqSnap := runOne(1)
	par, parSnap := runOne(4)

	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	a, err := json.Marshal(seqSnap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("folded metrics snapshots differ between sequential and parallel runs")
	}
}

// TestChaosCSVShape keeps the plotting contract stable.
func TestChaosCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallChaos()
	cfg.Profiles = []chaos.Profile{chaos.Calm()}
	cfg.Baseline = false
	res, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	if len(lines) != 1+len(res.Rows) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(res.Rows))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != wantCols {
			t.Errorf("row %d has %d columns, want %d", i, got, wantCols)
		}
	}
	if !strings.HasPrefix(lines[0], "profile,policy,mode,delivery_ratio") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}
