// Package experiment regenerates every figure in the paper's evaluation
// and the ablations DESIGN.md calls out.
//
// Figures 1-3 are analytic (the paper plots the Section 4 model); Figure 4
// is the Section 5 validation experiment, reproduced on the simulated
// radio testbed. Each figure has one entry point returning typed results
// plus a text renderer used by cmd/retri-experiments and EXPERIMENTS.md.
package experiment

import (
	"retri/internal/model"
)

// Defaults shared by the analytic figures, matching the paper's plots.
var (
	// Figure1Densities are the transaction densities plotted in Figure 1:
	// "cases where 16, 256, and 65,536 transactions are simultaneously
	// visible to individual nodes".
	Figure1Densities = []float64{16, 256, 65536}
	// StaticComparisonBits are the static identifier sizes plotted as
	// flat lines: optimal 16-bit allocation and conservative 32-bit.
	StaticComparisonBits = []int{16, 32}
)

// Curve is one named series of an efficiency figure.
type Curve struct {
	// Label describes the series (e.g. "AFF T=16", "static 16-bit").
	Label string
	// T is the transaction density for AFF curves, 0 for static lines.
	T float64
	// Points sample efficiency against identifier bits.
	Points []model.Point
}

// EfficiencyFigure is the Figure 1/2 layout: efficiency vs identifier size
// for a fixed data size.
type EfficiencyFigure struct {
	// DataBits is the payload size D.
	DataBits int
	// HMin, HMax bound the identifier sweep.
	HMin, HMax int
	// AFF holds one curve per transaction density.
	AFF []Curve
	// Static holds one flat line per static identifier size.
	Static []Curve
	// Optima records the best identifier width per AFF curve.
	Optima map[float64]model.Point
}

// EfficiencyCurves computes a Figure 1/2-style figure for the given data
// size, densities and static comparison widths.
func EfficiencyCurves(dataBits int, densities []float64, staticBits []int, hMin, hMax int) (EfficiencyFigure, error) {
	fig := EfficiencyFigure{
		DataBits: dataBits,
		HMin:     hMin,
		HMax:     hMax,
		Optima:   make(map[float64]model.Point, len(densities)),
	}
	for _, t := range densities {
		pts, err := model.AFFCurve(dataBits, t, hMin, hMax)
		if err != nil {
			return EfficiencyFigure{}, err
		}
		fig.AFF = append(fig.AFF, Curve{
			Label:  affLabel(t),
			T:      t,
			Points: pts,
		})
		h, e := model.OptimalBits(dataBits, t, hMax)
		fig.Optima[t] = model.Point{H: h, E: e}
	}
	for _, h := range staticBits {
		e := model.EStatic(dataBits, h)
		line := make([]model.Point, 0, hMax-hMin+1)
		for x := hMin; x <= hMax; x++ {
			line = append(line, model.Point{H: x, E: e})
		}
		fig.Static = append(fig.Static, Curve{
			Label:  staticLabel(h),
			Points: line,
		})
	}
	return fig, nil
}

// Figure1 reproduces Figure 1: 16-bit data, AFF at T in {16, 256, 65536}
// against 16- and 32-bit static allocation, identifier sizes 1..32.
func Figure1() (EfficiencyFigure, error) {
	return EfficiencyCurves(16, Figure1Densities, StaticComparisonBits, 1, 32)
}

// Figure2 reproduces Figure 2: the same sweep with 128-bit data.
func Figure2() (EfficiencyFigure, error) {
	return EfficiencyCurves(128, Figure1Densities, StaticComparisonBits, 1, 32)
}

// LoadFigure is the Figure 3 layout: efficiency vs offered load for fixed
// identifier sizes.
type LoadFigure struct {
	DataBits int
	Loads    []float64
	// AFFBits and StaticBits identify the plotted schemes.
	AFFBits    int
	StaticBits int
	AFF        []model.LoadPoint
	Static     []model.LoadPoint
}

// Figure3 reproduces Figure 3: 16-bit data, a 16-bit AFF pool against a
// 16-bit static space, over loads spanning 1 to 2^18 concurrent
// transactions. Static is flat until its space is exhausted at 2^16 and
// undefined beyond; AFF continues, degraded.
func Figure3() LoadFigure {
	loads := make([]float64, 0, 19)
	for e := 0; e <= 18; e++ {
		loads = append(loads, float64(uint64(1)<<uint(e)))
	}
	const dataBits, bits = 16, 16
	return LoadFigure{
		DataBits:   dataBits,
		Loads:      loads,
		AFFBits:    bits,
		StaticBits: bits,
		AFF:        model.AFFLoadCurve(dataBits, bits, loads),
		Static:     model.StaticLoadCurve(dataBits, bits, loads),
	}
}
