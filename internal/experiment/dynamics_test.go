package experiment

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"retri/internal/metrics"
	"retri/internal/mobility"
)

// smallDynamics is a sweep small enough to run twice in a test yet
// covering both a movement scenario and a churn scenario in both arms.
func smallDynamics() DynamicsConfig {
	cfg := DefaultDynamicsConfig()
	cfg.Senders = 3
	cfg.Trials = 2
	cfg.Duration = 6 * time.Second
	cfg.SampleInterval = time.Second
	cfg.Scenarios = []DynScenario{DynWaypoint, DynChurn}
	cfg.Duty = mobility.DutyCycle{MeanUp: 2 * time.Second, MeanDown: time.Second}
	return cfg
}

func TestDynamicsValidate(t *testing.T) {
	bad := []func(*DynamicsConfig){
		func(c *DynamicsConfig) { c.Senders = 0 },
		func(c *DynamicsConfig) { c.Trials = 0 },
		func(c *DynamicsConfig) { c.Scenarios = nil },
		func(c *DynamicsConfig) { c.Policies = []WidthPolicyKind{"telepathic"} },
		func(c *DynamicsConfig) { c.SampleInterval = 0 },
		func(c *DynamicsConfig) { c.SampleInterval = c.Duration + time.Second },
		func(c *DynamicsConfig) { c.FixedBits = 0 },
		func(c *DynamicsConfig) { c.MinBits = 9; c.MaxBits = 4 },
		func(c *DynamicsConfig) { c.MaxBits = 40 },
		func(c *DynamicsConfig) { c.Area = mobility.Area{} },
		func(c *DynamicsConfig) { c.Range = 0 },
		func(c *DynamicsConfig) { c.MinSpeed = 0 },
		func(c *DynamicsConfig) { c.Scenarios = []DynScenario{DynScript} }, // no script
		func(c *DynamicsConfig) { c.Duty = mobility.DutyCycle{} },
	}
	for i, mutate := range bad {
		cfg := DefaultDynamicsConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultDynamicsConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// A script referencing a node beyond the population is rejected.
	s, err := mobility.ParseScriptString("1s move 9 0 0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDynamicsConfig()
	cfg.Scenarios = []DynScenario{DynScript}
	cfg.Script = &s
	if err := cfg.Validate(); err == nil {
		t.Error("script referencing node 9 accepted with 8 senders")
	}
}

func TestParseDynScenarios(t *testing.T) {
	got, err := ParseDynScenarios("waypoint, churn")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []DynScenario{DynWaypoint, DynChurn}) {
		t.Errorf("parsed %v", got)
	}
	if all, _ := ParseDynScenarios("all"); !reflect.DeepEqual(all, AllDynScenarios()) {
		t.Errorf("all parsed as %v", all)
	}
	for _, bad := range []string{"", "teleport", "waypoint,,bogus"} {
		if _, err := ParseDynScenarios(bad); err == nil {
			t.Errorf("scenario list %q accepted", bad)
		}
	}
}

func TestParseWidthPolicies(t *testing.T) {
	got, err := ParseWidthPolicies("fixed, adaptive-turnover")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []WidthPolicyKind{WidthFixed, WidthAdaptiveTurnover}) {
		t.Errorf("parsed %v", got)
	}
	if all, _ := ParseWidthPolicies("all"); !reflect.DeepEqual(all, AllWidthPolicies()) {
		t.Errorf("all parsed as %v", all)
	}
	for _, bad := range []string{"", "telepathic", "fixed,,bogus"} {
		if _, err := ParseWidthPolicies(bad); err == nil {
			t.Errorf("policy list %q accepted", bad)
		}
	}
}

// TestDynamicsParallelByteIdentical: the dynamics sweep honors the repo's
// parallel-runner contract — table, CSV and folded metrics of a parallel
// run match the sequential run exactly. The oracle rides along (its report
// merge and metrics folding must be just as deterministic), and the
// default policy set covers the turnover-aware arm.
func TestDynamicsParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(parallelism int) (DynamicsResult, *metrics.Registry) {
		cfg := smallDynamics()
		cfg.Parallelism = parallelism
		cfg.Oracle = true
		reg := metrics.NewRegistry()
		cfg.Obs = &Obs{Metrics: reg}
		res, err := Dynamics(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}
	seq, seqReg := run(1)
	par, parReg := run(4)
	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if !reflect.DeepEqual(parReg.Snapshot(), seqReg.Snapshot()) {
		t.Error("parallel metrics snapshot differs from sequential")
	}
}

// TestDynamicsOracleTransparent: the oracle is an observer, not a
// participant — a run with it attached is byte-identical to a run without
// it, and the extra output is strictly additive.
func TestDynamicsOracleTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(oracleOn bool) DynamicsResult {
		cfg := smallDynamics()
		cfg.Oracle = oracleOn
		res, err := Dynamics(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if got, want := on.CSV(), off.CSV(); got != want {
		t.Errorf("oracle perturbed the run:\n--- oracle off ---\n%s--- oracle on ---\n%s", want, got)
	}
	if !strings.HasPrefix(on.Render(), off.Render()) {
		t.Errorf("oracle-on table is not an extension of oracle-off:\n--- off ---\n%s--- on ---\n%s", off.Render(), on.Render())
	}
	for _, r := range off.Rows {
		if r.Oracle != nil {
			t.Errorf("%s/%s carries an oracle report with the oracle off", r.Scenario, r.Policy)
		}
	}
	for _, r := range on.Rows {
		if r.Oracle == nil {
			t.Errorf("%s/%s missing oracle report", r.Scenario, r.Policy)
			continue
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s/%s violates conformance: %v", r.Scenario, r.Policy, err)
		}
		if r.Oracle.PacketsAudited == 0 || r.Oracle.TransactionsOpened == 0 {
			t.Errorf("%s/%s oracle audited nothing: %+v", r.Scenario, r.Policy, r.Oracle)
		}
	}
}

// TestDynamicsGroupScenario is the deterministic regression test for the
// group-mobility scenario: two RPGM clusters roam the area, so the density
// each sender sees changes in a correlated way as the clusters partition
// from and merge with each other. The run must be reproducible bit for bit
// and must actually exhibit density variation (a flat optimal-width series
// would mean the clusters never changed relative position).
func TestDynamicsGroupScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func() DynamicsResult {
		cfg := smallDynamics()
		cfg.Senders = 4 // two clusters of two
		cfg.Trials = 1
		cfg.Duration = 30 * time.Second
		cfg.Area = mobility.Area{W: 40, H: 40}
		cfg.Range = 12
		cfg.GroupSpread = 3
		cfg.MinSpeed, cfg.MaxSpeed = 2, 4
		cfg.Scenarios = []DynScenario{DynGroup}
		cfg.Policies = []WidthPolicyKind{WidthAdaptiveTurnover}
		cfg.Oracle = true
		res, err := Dynamics(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CSV() != b.CSV() || a.Render() != b.Render() {
		t.Error("group scenario is not deterministic across runs")
	}
	if len(a.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(a.Rows))
	}
	r := a.Rows[0]
	if r.TruthDelivered == 0 {
		t.Error("group scenario delivered nothing")
	}
	if err := r.Oracle.Check(); err != nil {
		t.Errorf("group scenario violates conformance: %v", err)
	}
	minOpt, maxOpt := math.Inf(1), math.Inf(-1)
	for _, p := range r.Series {
		if p.Awake == 0 {
			continue
		}
		minOpt = math.Min(minOpt, p.OptimalH)
		maxOpt = math.Max(maxOpt, p.OptimalH)
	}
	if !(maxOpt > minOpt) {
		t.Errorf("optimal-width series flat at %.2f: clusters never partitioned or merged", minOpt)
	}
}

// TestDynamicsTurnoverConformance pins the tentpole's acceptance
// criterion with the omniscient oracle as referee: on sparse dynamics
// scenarios — where the flat idle-gap estimator over-counts under fast
// transaction turnover and drives the width 1.7-3.5 bits above optimum —
// the turnover-aware adaptive arm achieves a steady-state width within
// one bit of the Equation 4 optimum at the oracle's true density, and
// strictly improves on the flat arm. Both arms must stay violation-free.
func TestDynamicsTurnoverConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultDynamicsConfig()
	cfg.Trials = 1
	cfg.Duration = time.Minute
	cfg.Scenarios = []DynScenario{DynWaypoint, DynChurn}
	cfg.Policies = []WidthPolicyKind{WidthAdaptive, WidthAdaptiveTurnover}
	cfg.Oracle = true
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gaps := make(map[DynScenario]map[WidthPolicyKind]float64)
	for _, r := range res.Rows {
		if r.Oracle == nil {
			t.Fatalf("%s/%s missing oracle report", r.Scenario, r.Policy)
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s/%s violates conformance: %v", r.Scenario, r.Policy, err)
		}
		if len(r.Oracle.WidthGaps) == 0 || len(r.Oracle.EstErrors) == 0 {
			t.Fatalf("%s/%s oracle sampled nothing", r.Scenario, r.Policy)
		}
		if gaps[r.Scenario] == nil {
			gaps[r.Scenario] = make(map[WidthPolicyKind]float64)
		}
		gaps[r.Scenario][r.Policy] = r.Oracle.MeanAbsWidthGap()
	}
	for scenario, byPolicy := range gaps {
		flat, aware := byPolicy[WidthAdaptive], byPolicy[WidthAdaptiveTurnover]
		// 1.1 rather than a clean 1.0: the instrumentation trailer's guard
		// byte lengthens every oracle-run frame, and the slightly different
		// airtime shifts this single-trial estimate by ~0.01 bits.
		if aware > 1.1 {
			t.Errorf("%s: turnover-aware arm is %.2f bits from the omniscient optimum, want <= 1.1", scenario, aware)
		}
		if aware >= flat {
			t.Errorf("%s: turnover-aware gap %.2f does not improve on flat estimator's %.2f", scenario, aware, flat)
		}
	}
}

// TestDynamicsAdaptiveConverges pins the tentpole's acceptance criterion:
// with every sender in range of every other (stable true density), the
// adaptive arm settles within one bit of the Equation 4 optimum in steady
// state, while the fixed arm stays pinned at its compile-time width.
func TestDynamicsAdaptiveConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultDynamicsConfig()
	cfg.Senders = 5
	cfg.Trials = 2
	cfg.Duration = 40 * time.Second
	cfg.Area = mobility.Area{W: 10, H: 10}
	cfg.Range = 100 // full mesh: T = senders, constant
	cfg.Scenarios = []DynScenario{DynStationary}
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.Policy {
		case WidthFixed:
			if r.AchievedH.Mean != float64(cfg.FixedBits) {
				t.Errorf("fixed arm achieved %.2f bits, want pinned %d", r.AchievedH.Mean, cfg.FixedBits)
			}
			if r.Gap.StdDev != 0 && r.OptimalH.StdDev != 0 {
				t.Errorf("fixed stationary arm jittered: gap %+v optimal %+v", r.Gap, r.OptimalH)
			}
		case WidthAdaptive:
			if r.Gap.Mean > 1 {
				t.Errorf("adaptive arm steady-state gap %.2f bits exceeds 1 (achieved %.2f, optimal %.2f)",
					r.Gap.Mean, r.AchievedH.Mean, r.OptimalH.Mean)
			}
		}
		if r.AFFDelivered == 0 || r.TruthDelivered == 0 {
			t.Errorf("%s/%s delivered nothing", r.Scenario, r.Policy)
		}
	}
}

// TestDynamicsScriptScenario drives the script scenario end to end: the
// scripted sleep shows up in the churn counters and the run still
// delivers.
func TestDynamicsScriptScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s, err := mobility.ParseScriptString(`
1s  sleep 1
3s  wake 1
2s  walk 2 5 5 4
4s  leave 3
5s  join 3 30 30
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallDynamics()
	cfg.Scenarios = []DynScenario{DynScript}
	cfg.Script = &s
	cfg.Trials = 1
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Churn.Sleeps != 1 || r.Churn.Wakes != 1 || r.Churn.Leaves != 1 || r.Churn.Joins != 1 {
			t.Errorf("%s/%s churn counters %+v, want one of each", r.Scenario, r.Policy, r.Churn)
		}
		if r.TruthDelivered == 0 {
			t.Errorf("%s/%s delivered nothing", r.Scenario, r.Policy)
		}
	}
}

// TestDynamicsCSVShape: the CSV carries both record kinds under one
// header, and the time series has one record per sample instant per cell.
func TestDynamicsCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallDynamics()
	cfg.Scenarios = []DynScenario{DynStationary}
	cfg.Policies = []WidthPolicyKind{WidthAdaptive}
	cfg.Trials = 1
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	wantSamples := int(cfg.Duration / cfg.SampleInterval)
	if got, want := len(lines), 1+1+wantSamples; got != want {
		t.Fatalf("CSV has %d lines, want header + 1 summary + %d samples", got, wantSamples)
	}
	if !strings.HasPrefix(lines[1], "summary,stationary,adaptive,") {
		t.Errorf("summary record %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "h_t,stationary,adaptive,1,") {
		t.Errorf("first series record %q", lines[2])
	}
}
