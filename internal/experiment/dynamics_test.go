package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"retri/internal/metrics"
	"retri/internal/mobility"
)

// smallDynamics is a sweep small enough to run twice in a test yet
// covering both a movement scenario and a churn scenario in both arms.
func smallDynamics() DynamicsConfig {
	cfg := DefaultDynamicsConfig()
	cfg.Senders = 3
	cfg.Trials = 2
	cfg.Duration = 6 * time.Second
	cfg.SampleInterval = time.Second
	cfg.Scenarios = []DynScenario{DynWaypoint, DynChurn}
	cfg.Duty = mobility.DutyCycle{MeanUp: 2 * time.Second, MeanDown: time.Second}
	return cfg
}

func TestDynamicsValidate(t *testing.T) {
	bad := []func(*DynamicsConfig){
		func(c *DynamicsConfig) { c.Senders = 0 },
		func(c *DynamicsConfig) { c.Trials = 0 },
		func(c *DynamicsConfig) { c.Scenarios = nil },
		func(c *DynamicsConfig) { c.Policies = []WidthPolicyKind{"telepathic"} },
		func(c *DynamicsConfig) { c.SampleInterval = 0 },
		func(c *DynamicsConfig) { c.SampleInterval = c.Duration + time.Second },
		func(c *DynamicsConfig) { c.FixedBits = 0 },
		func(c *DynamicsConfig) { c.MinBits = 9; c.MaxBits = 4 },
		func(c *DynamicsConfig) { c.MaxBits = 40 },
		func(c *DynamicsConfig) { c.Area = mobility.Area{} },
		func(c *DynamicsConfig) { c.Range = 0 },
		func(c *DynamicsConfig) { c.MinSpeed = 0 },
		func(c *DynamicsConfig) { c.Scenarios = []DynScenario{DynScript} }, // no script
		func(c *DynamicsConfig) { c.Duty = mobility.DutyCycle{} },
	}
	for i, mutate := range bad {
		cfg := DefaultDynamicsConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultDynamicsConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// A script referencing a node beyond the population is rejected.
	s, err := mobility.ParseScriptString("1s move 9 0 0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDynamicsConfig()
	cfg.Scenarios = []DynScenario{DynScript}
	cfg.Script = &s
	if err := cfg.Validate(); err == nil {
		t.Error("script referencing node 9 accepted with 8 senders")
	}
}

func TestParseDynScenarios(t *testing.T) {
	got, err := ParseDynScenarios("waypoint, churn")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []DynScenario{DynWaypoint, DynChurn}) {
		t.Errorf("parsed %v", got)
	}
	if all, _ := ParseDynScenarios("all"); !reflect.DeepEqual(all, AllDynScenarios()) {
		t.Errorf("all parsed as %v", all)
	}
	for _, bad := range []string{"", "teleport", "waypoint,,bogus"} {
		if _, err := ParseDynScenarios(bad); err == nil {
			t.Errorf("scenario list %q accepted", bad)
		}
	}
}

// TestDynamicsParallelByteIdentical: the dynamics sweep honors the repo's
// parallel-runner contract — table, CSV and folded metrics of a parallel
// run match the sequential run exactly.
func TestDynamicsParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(parallelism int) (DynamicsResult, *metrics.Registry) {
		cfg := smallDynamics()
		cfg.Parallelism = parallelism
		reg := metrics.NewRegistry()
		cfg.Obs = &Obs{Metrics: reg}
		res, err := Dynamics(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}
	seq, seqReg := run(1)
	par, parReg := run(4)
	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if !reflect.DeepEqual(parReg.Snapshot(), seqReg.Snapshot()) {
		t.Error("parallel metrics snapshot differs from sequential")
	}
}

// TestDynamicsAdaptiveConverges pins the tentpole's acceptance criterion:
// with every sender in range of every other (stable true density), the
// adaptive arm settles within one bit of the Equation 4 optimum in steady
// state, while the fixed arm stays pinned at its compile-time width.
func TestDynamicsAdaptiveConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultDynamicsConfig()
	cfg.Senders = 5
	cfg.Trials = 2
	cfg.Duration = 40 * time.Second
	cfg.Area = mobility.Area{W: 10, H: 10}
	cfg.Range = 100 // full mesh: T = senders, constant
	cfg.Scenarios = []DynScenario{DynStationary}
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.Policy {
		case WidthFixed:
			if r.AchievedH.Mean != float64(cfg.FixedBits) {
				t.Errorf("fixed arm achieved %.2f bits, want pinned %d", r.AchievedH.Mean, cfg.FixedBits)
			}
			if r.Gap.StdDev != 0 && r.OptimalH.StdDev != 0 {
				t.Errorf("fixed stationary arm jittered: gap %+v optimal %+v", r.Gap, r.OptimalH)
			}
		case WidthAdaptive:
			if r.Gap.Mean > 1 {
				t.Errorf("adaptive arm steady-state gap %.2f bits exceeds 1 (achieved %.2f, optimal %.2f)",
					r.Gap.Mean, r.AchievedH.Mean, r.OptimalH.Mean)
			}
		}
		if r.AFFDelivered == 0 || r.TruthDelivered == 0 {
			t.Errorf("%s/%s delivered nothing", r.Scenario, r.Policy)
		}
	}
}

// TestDynamicsScriptScenario drives the script scenario end to end: the
// scripted sleep shows up in the churn counters and the run still
// delivers.
func TestDynamicsScriptScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s, err := mobility.ParseScriptString(`
1s  sleep 1
3s  wake 1
2s  walk 2 5 5 4
4s  leave 3
5s  join 3 30 30
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallDynamics()
	cfg.Scenarios = []DynScenario{DynScript}
	cfg.Script = &s
	cfg.Trials = 1
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Churn.Sleeps != 1 || r.Churn.Wakes != 1 || r.Churn.Leaves != 1 || r.Churn.Joins != 1 {
			t.Errorf("%s/%s churn counters %+v, want one of each", r.Scenario, r.Policy, r.Churn)
		}
		if r.TruthDelivered == 0 {
			t.Errorf("%s/%s delivered nothing", r.Scenario, r.Policy)
		}
	}
}

// TestDynamicsCSVShape: the CSV carries both record kinds under one
// header, and the time series has one record per sample instant per cell.
func TestDynamicsCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallDynamics()
	cfg.Scenarios = []DynScenario{DynStationary}
	cfg.Policies = []WidthPolicyKind{WidthAdaptive}
	cfg.Trials = 1
	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	wantSamples := int(cfg.Duration / cfg.SampleInterval)
	if got, want := len(lines), 1+1+wantSamples; got != want {
		t.Fatalf("CSV has %d lines, want header + 1 summary + %d samples", got, wantSamples)
	}
	if !strings.HasPrefix(lines[1], "summary,stationary,adaptive,") {
		t.Errorf("summary record %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "h_t,stationary,adaptive,1,") {
		t.Errorf("first series record %q", lines[2])
	}
}
