package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/core"
)

func TestParseStrategies(t *testing.T) {
	all, err := ParseStrategies("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(core.Strategies()) || len(all) < 5 {
		t.Errorf("ParseStrategies(all) = %v, want every registered strategy", all)
	}
	got, err := ParseStrategies("uniform, permutation")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "uniform" || got[1] != "permutation" {
		t.Errorf("ParseStrategies = %v", got)
	}
	for _, bad := range []string{"nope", "uniform,nope", "", ","} {
		if _, err := ParseStrategies(bad); err == nil {
			t.Errorf("ParseStrategies(%q) accepted", bad)
		}
	}
}

func TestStrategiesConfigValidate(t *testing.T) {
	good := DefaultStrategiesConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, breakIt := range []func(*StrategiesConfig){
		func(c *StrategiesConfig) { c.Strategies = nil },
		func(c *StrategiesConfig) { c.Strategies = []string{"nope"} },
		func(c *StrategiesConfig) { c.Densities = nil },
		func(c *StrategiesConfig) { c.Densities = []int{0} },
		func(c *StrategiesConfig) { c.Trials = 0 },
		func(c *StrategiesConfig) { c.IDBits = 0 },
		func(c *StrategiesConfig) { c.IDBits = 40 },
		func(c *StrategiesConfig) { c.PacketSize = 0 },
		func(c *StrategiesConfig) { c.Duration = 0 },
	} {
		cfg := DefaultStrategiesConfig()
		breakIt(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// smallStrategies is a sweep small enough to run twice in a test yet
// covering every registered strategy at two densities.
func smallStrategies() StrategiesConfig {
	cfg := DefaultStrategiesConfig()
	cfg.Trials = 2
	cfg.Duration = 2 * time.Second
	cfg.Densities = []int{2, 5}
	return cfg
}

// TestStrategiesSweep runs the full bazaar once and checks the claims the
// figure rests on: every (strategy, density) cell is populated, traffic
// flowed, the Eq. 4 prediction is attached, and the passively attached
// oracle saw no conservation, misdelivery or freshness violations for any
// strategy.
func TestStrategiesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallStrategies()
	res, err := Strategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Strategies) * len(cfg.Densities); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r.Offered == 0 || r.TruthDelivered == 0 {
			t.Errorf("%s T=%d: no traffic (offered=%d truth=%d)", r.Strategy, r.T, r.Offered, r.TruthDelivered)
		}
		if r.Delivery.Mean <= 0 || r.Delivery.Mean > 1 {
			t.Errorf("%s T=%d: delivery %v out of (0, 1]", r.Strategy, r.T, r.Delivery.Mean)
		}
		if r.ModelRate <= 0 {
			t.Errorf("%s T=%d: no Eq. 4 prediction", r.Strategy, r.T)
		}
		if r.Oracle == nil {
			t.Fatalf("%s T=%d: oracle not attached", r.Strategy, r.T)
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s T=%d: oracle violations: %v", r.Strategy, r.T, err)
		}
		if r.Oracle.PacketsAudited == 0 {
			t.Errorf("%s T=%d: oracle audited nothing", r.Strategy, r.T)
		}
	}
	table := res.Render()
	csv := res.CSV()
	for _, name := range cfg.Strategies {
		if !strings.Contains(table, name) || !strings.Contains(csv, name) {
			t.Errorf("strategy %q missing from output", name)
		}
	}
	if !strings.Contains(table, "Oracle conformance") {
		t.Error("oracle section missing from table")
	}
}

// TestStrategiesParallelByteIdentical extends the parallel-runner
// guarantee to the strategies sweep: table and CSV of a parallel run must
// match the sequential run byte for byte, oracle reports included.
func TestStrategiesParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	seq, err := Strategies(smallStrategies())
	if err != nil {
		t.Fatal(err)
	}
	parCfg := smallStrategies()
	parCfg.Parallelism = 4
	par, err := Strategies(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestRecoveryOracleClean attaches the oracle to a clean-channel recovery
// run: with no faults injected, the AFF rows must audit packets and
// report zero violations, and static rows must carry no report at all.
func TestRecoveryOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultRecoveryConfig()
	cfg.Trials = 1
	cfg.Duration = 10 * time.Second
	cfg.Faults = []FaultKind{FaultNone}
	cfg.Oracle = true
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	affRows, staticRows := 0, 0
	for _, r := range res.Rows {
		if r.Scheme.Kind == "aff" {
			affRows++
			if r.Oracle == nil {
				t.Fatalf("%s: oracle not attached to AFF row", r.Label())
			}
			if err := r.Oracle.Check(); err != nil {
				t.Errorf("%s: oracle violations on a clean channel: %v", r.Label(), err)
			}
			if r.Oracle.PacketsAudited == 0 {
				t.Errorf("%s: oracle audited nothing", r.Label())
			}
		} else {
			staticRows++
			if r.Oracle != nil {
				t.Errorf("%s: static baseline has no identifiers to audit", r.Label())
			}
		}
	}
	if affRows == 0 || staticRows == 0 {
		t.Fatalf("sweep missing a scheme: aff=%d static=%d", affRows, staticRows)
	}
	if !strings.Contains(res.Render(), "Oracle conformance") {
		t.Error("oracle section missing from recovery table")
	}
}
