package experiment

import (
	"math"
	"strings"
	"testing"
	"time"
)

func quickScalingConfig() ScalingConfig {
	cfg := DefaultScalingConfig()
	cfg.GridSizes = []int{3, 6}
	cfg.Duration = 30 * time.Second
	cfg.Trials = 2
	return cfg
}

func TestRunScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := RunScaling(quickScalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	small, large := res.Points[0], res.Points[1]
	if small.Nodes != 9 || large.Nodes != 36 {
		t.Fatalf("node counts: %d, %d", small.Nodes, large.Nodes)
	}
	// The headline claim: density (and with it the collision rate at a
	// fixed identifier size) does not grow with network size, because
	// interactions are local.
	if large.MeanDensity.Mean > 3*small.MeanDensity.Mean+1 {
		t.Errorf("density grew with network size: %.2f -> %.2f",
			small.MeanDensity.Mean, large.MeanDensity.Mean)
	}
	if large.CollisionRate.Mean > small.CollisionRate.Mean+0.05 {
		t.Errorf("collision rate grew with network size: %.4f -> %.4f",
			small.CollisionRate.Mean, large.CollisionRate.Mean)
	}
	// Static allocation must grow.
	if large.StaticBitsNeeded <= small.StaticBitsNeeded {
		t.Errorf("static bits did not grow: %d -> %d",
			small.StaticBitsNeeded, large.StaticBitsNeeded)
	}
	// Model efficiencies populated.
	for _, p := range res.Points {
		if p.EAFFModel <= 0 || p.EStaticModel <= 0 {
			t.Errorf("model efficiencies missing: %+v", p)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "static bits") || !strings.Contains(out, "3x3") {
		t.Error("Render() incomplete")
	}
}

func TestRunScalingValidation(t *testing.T) {
	bad := quickScalingConfig()
	bad.GridSizes = nil
	if _, err := RunScaling(bad); err == nil {
		t.Error("empty grid list accepted")
	}
	bad = quickScalingConfig()
	bad.Trials = 0
	if _, err := RunScaling(bad); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestBitsForPopulation(t *testing.T) {
	tests := []struct{ nodes, want int }{
		{1, 1}, {2, 1}, {3, 2}, {16, 4}, {17, 5}, {144, 8}, {65536, 16},
	}
	for _, tt := range tests {
		if got := bitsForPopulation(tt.nodes); got != tt.want {
			t.Errorf("bitsForPopulation(%d) = %d, want %d", tt.nodes, got, tt.want)
		}
	}
	if math.Ceil(math.Log2(144)) != 8 {
		t.Error("sanity")
	}
}
