package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"retri/internal/energy"
	"retri/internal/model"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/stats"
	"retri/internal/xrand"
)

// --- Listening-window ablation (Section 3.2 / 5.1) ---

// WindowAblationResult reports collision rate against listening-window
// size, with the adaptive 2T rule included as window 0.
type WindowAblationResult struct {
	Config  Figure4Config
	Windows []int
	Series  *stats.Series
	// Adaptive is the 2T-rule result for comparison.
	Adaptive stats.Summary
}

// AblationListeningWindow measures how the listening window's size trades
// off against collision rate at a fixed identifier width. Window 0 in
// Windows is replaced by the adaptive 2T rule.
func AblationListeningWindow(cfg Figure4Config, idBits int, windows []int) (WindowAblationResult, error) {
	res := WindowAblationResult{Config: cfg, Windows: windows, Series: stats.NewSeries("window")}
	src := xrand.NewSource(cfg.Seed).Child("ablation-window")
	type job struct {
		cfg      Figure4Config
		adaptive bool
		window   int
		src      *xrand.Source
	}
	jobs := make([]job, 0, (len(windows)+1)*cfg.Trials)
	for _, w := range windows {
		run := cfg
		run.FixedWindow = w
		for trial := 0; trial < cfg.Trials; trial++ {
			jobs = append(jobs, job{run, false, w, src.Child(fmt.Sprint(w), fmt.Sprint(trial))})
		}
	}
	// Adaptive baseline.
	for trial := 0; trial < cfg.Trials; trial++ {
		jobs = append(jobs, job{cfg, true, 0, src.Child("adaptive", fmt.Sprint(trial))})
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (TrialOutcome, error) {
		return RunCollisionTrial(jobs[i].cfg, SelListening, idBits, jobs[i].src)
	})
	if err != nil {
		return WindowAblationResult{}, err
	}
	if err := foldTrialObs(cfg.Obs, outs, func(i int) string {
		if jobs[i].adaptive {
			return "ablation-window adaptive"
		}
		return fmt.Sprintf("ablation-window window=%d", jobs[i].window)
	}); err != nil {
		return WindowAblationResult{}, err
	}
	var acc stats.Accumulator
	for i, out := range outs {
		if jobs[i].adaptive {
			acc.Add(out.CollisionRate)
		} else {
			res.Series.Add(float64(jobs[i].window), out.CollisionRate)
		}
	}
	res.Adaptive = acc.Summary()
	return res, nil
}

// Render renders the window ablation as a table.
func (r WindowAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Listening-window ablation (T=%d)\n", r.Config.Transmitters)
	fmt.Fprintf(&b, "%10s %24s\n", "window", "collision rate")
	for _, p := range r.Series.Points() {
		fmt.Fprintf(&b, "%10.0f %15.6f ± %6.4f\n", p.X, p.Y.Mean, p.Y.StdDev)
	}
	fmt.Fprintf(&b, "%10s %15.6f ± %6.4f\n", "2T (adapt)", r.Adaptive.Mean, r.Adaptive.StdDev)
	return b.String()
}

// --- Hidden-terminal ablation (Section 3.2, footnote 3) ---

// HiddenTerminalResult compares selector algorithms across a hearing
// spectrum: full mutual hearing, shadowed partial hearing, and mutually
// hidden transmitters. The spectrum is the Section 8 request — "a model of
// the system topology will be required to capture the effect of listening
// so that problems such as hidden terminal effects are taken into
// account" — made empirical.
type HiddenTerminalResult struct {
	Config Figure4Config
	IDBits int
	// FullMesh, Shadowed and Hidden map selector kind to collision-rate
	// summaries under each topology.
	FullMesh map[SelectorKind]stats.Summary
	Shadowed map[SelectorKind]stats.Summary
	Hidden   map[SelectorKind]stats.Summary
}

// HiddenStarTopology returns the footnote-3 topology: every transmitter
// linked to the receiver, no transmitter linked to any other.
func HiddenStarTopology(transmitters int, receiver radio.NodeID) radio.Topology {
	g := radio.NewGraph()
	for i := 1; i <= transmitters; i++ {
		g.SetLink(radio.NodeID(i), receiver, true)
	}
	return g
}

// ShadowedClusterTopology places the transmitters on a circle around the
// receiver under log-normal shadowing, then guarantees the
// transmitter-receiver links (a transmitter that cannot reach the receiver
// measures nothing) while leaving transmitter-to-transmitter hearing to
// the fades — some pairs hear each other, some do not.
func ShadowedClusterTopology(transmitters int, receiver radio.NodeID) radio.Topology {
	const (
		radioRange = 10.0
		sigmaDB    = 6.0
	)
	sh := radio.NewShadowed(radioRange, sigmaDB, 12345)
	sh.Place(receiver, radio.Point{})
	for i := 1; i <= transmitters; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(transmitters)
		sh.Place(radio.NodeID(i), radio.Point{
			X: 0.8 * radioRange * math.Cos(angle),
			Y: 0.8 * radioRange * math.Sin(angle),
		})
	}
	g := radio.NewGraph()
	for i := 1; i <= transmitters; i++ {
		g.SetLink(radio.NodeID(i), receiver, true)
		for j := i + 1; j <= transmitters; j++ {
			if sh.Connected(radio.NodeID(i), radio.NodeID(j)) {
				g.SetLink(radio.NodeID(i), radio.NodeID(j), true)
			}
		}
	}
	return g
}

// AblationHiddenTerminal measures how much of listening's advantage
// survives when senders are mutually hidden, and how much the explicit
// collision-notification extension recovers.
//
// The workload is forced periodic (not continuous): mutually hidden
// continuous senders destroy essentially every frame at the RF level, so
// there would be no surviving packets over which to measure identifier
// collisions. Moderate duty cycle lets transactions overlap in time while
// most frames interleave cleanly.
func AblationHiddenTerminal(cfg Figure4Config, idBits int, kinds []SelectorKind) (HiddenTerminalResult, error) {
	res := HiddenTerminalResult{
		Config:   cfg,
		IDBits:   idBits,
		FullMesh: make(map[SelectorKind]stats.Summary, len(kinds)),
		Shadowed: make(map[SelectorKind]stats.Summary, len(kinds)),
		Hidden:   make(map[SelectorKind]stats.Summary, len(kinds)),
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 300 * time.Millisecond
	}
	src := xrand.NewSource(cfg.Seed).Child("ablation-hidden")
	topologies := []struct {
		name string
		topo func(int, radio.NodeID) radio.Topology
		dst  map[SelectorKind]stats.Summary
	}{
		{"full", nil, res.FullMesh},
		{"shadowed", ShadowedClusterTopology, res.Shadowed},
		{"hidden", HiddenStarTopology, res.Hidden},
	}
	type job struct {
		cfg  Figure4Config
		kind SelectorKind
		dst  map[SelectorKind]stats.Summary
		src  *xrand.Source
	}
	jobs := make([]job, 0, len(kinds)*len(topologies)*cfg.Trials)
	for _, kind := range kinds {
		for _, tc := range topologies {
			run := cfg
			run.Topology = tc.topo
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{run, kind, tc.dst, src.Child(tc.name, string(kind), fmt.Sprint(trial))})
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (TrialOutcome, error) {
		return RunCollisionTrial(jobs[i].cfg, jobs[i].kind, idBits, jobs[i].src)
	})
	if err != nil {
		return HiddenTerminalResult{}, err
	}
	if err := foldTrialObs(cfg.Obs, outs, func(i int) string {
		return fmt.Sprintf("ablation-hidden sel=%s", jobs[i].kind)
	}); err != nil {
		return HiddenTerminalResult{}, err
	}
	var acc stats.Accumulator
	for i, out := range outs {
		acc.Add(out.CollisionRate)
		if (i+1)%cfg.Trials == 0 {
			jobs[i].dst[jobs[i].kind] = acc.Summary()
			acc = stats.Accumulator{}
		}
	}
	return res, nil
}

// Render renders the hidden-terminal ablation.
func (r HiddenTerminalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hidden-terminal ablation (%d-bit identifiers, T=%d)\n", r.IDBits, r.Config.Transmitters)
	fmt.Fprintf(&b, "%18s %24s %24s %24s\n", "selector", "full mesh", "shadowed (partial)", "hidden senders")
	kinds := make([]SelectorKind, 0, len(r.FullMesh))
	for k := range r.FullMesh {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		full, sh, hid := r.FullMesh[kind], r.Shadowed[kind], r.Hidden[kind]
		fmt.Fprintf(&b, "%18s %15.6f ± %6.4f %15.6f ± %6.4f %15.6f ± %6.4f\n",
			kind, full.Mean, full.StdDev, sh.Mean, sh.StdDev, hid.Mean, hid.StdDev)
	}
	return b.String()
}

// --- MAC-overhead ablation (Section 4.4) ---

// MACAblationResult compares measured efficiency across MAC framing
// profiles for several schemes.
type MACAblationResult struct {
	Profiles []energy.MACProfile
	Schemes  []Scheme
	// E[profile.Name][scheme.Label()] is measured Equation 1 efficiency
	// including framing.
	E map[string]map[string]float64
}

// AblationMACOverhead quantifies Section 4.4: AFF's header savings matter
// under light (RPC-like) framing and wash out under heavy (802.11-like)
// framing.
//
// Use a small PacketSize (the paper's "periodic messages consisting of only
// a few bits") so both schemes emit the same number of frames; with large
// multi-fragment packets AFF's shorter headers also reduce the frame count,
// a separate effect that heavier framing amplifies rather than washes out.
func AblationMACOverhead(base EfficiencyConfig, schemes []Scheme, profiles []energy.MACProfile) (MACAblationResult, error) {
	res := MACAblationResult{
		Profiles: profiles,
		Schemes:  schemes,
		E:        make(map[string]map[string]float64, len(profiles)),
	}
	src := xrand.NewSource(base.Seed).Child("ablation-mac")
	type job struct {
		cfg     EfficiencyConfig
		profile string
		scheme  string
		src     *xrand.Source
	}
	jobs := make([]job, 0, len(profiles)*len(schemes))
	for _, p := range profiles {
		res.E[p.Name] = make(map[string]float64, len(schemes))
		for _, s := range schemes {
			cfg := base
			cfg.Scheme = s
			cfg.MAC = p
			jobs = append(jobs, job{cfg, p.Name, s.Label(), src.Child(p.Name, s.Label())})
		}
	}
	outs, err := runner.Map(len(jobs), base.Hooks.runnerOptions(base.Parallelism), func(i int) (EfficiencyOutcome, error) {
		return RunEfficiencyTrial(jobs[i].cfg, jobs[i].src)
	})
	if err != nil {
		return MACAblationResult{}, err
	}
	for i, out := range outs {
		res.E[jobs[i].profile][jobs[i].scheme] = out.E()
	}
	return res, nil
}

// Render renders the MAC ablation as a profiles x schemes table.
func (r MACAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("MAC framing-overhead ablation: measured efficiency (Eq. 1, incl. framing)\n")
	fmt.Fprintf(&b, "%14s", "MAC profile")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %22s", s.Label())
	}
	b.WriteByte('\n')
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%14s", p.Name)
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %22.4f", r.E[p.Name][s.Label()])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Transaction-length ablation (Sections 4.1 and 8) ---

// LengthAblationResult compares measured collision rates for fixed-length
// and mixed-length transactions against the fixed-length model (Eq. 4)
// and the extended random-duration model (PSuccessPoisson, the Section 8
// refinement).
type LengthAblationResult struct {
	Config Figure4Config
	IDBits int
	// Model is Equation 4 (equal lengths); ModelPoisson is the
	// exponential-duration extension.
	Model        float64
	ModelPoisson float64
	Fixed        stats.Summary
	Mixed        stats.Summary
	Lengths      []int
}

// AblationTransactionLengths probes the model's equal-length assumption:
// the same identifier width and offered density, with packet sizes drawn
// from lengths instead of the fixed default.
func AblationTransactionLengths(cfg Figure4Config, idBits int, lengths []int) (LengthAblationResult, error) {
	res := LengthAblationResult{Config: cfg, IDBits: idBits, Lengths: lengths}
	src := xrand.NewSource(cfg.Seed).Child("ablation-length")
	type job struct {
		cfg   Figure4Config
		isMix bool
		src   *xrand.Source
	}
	mixCfg := cfg
	mixCfg.PacketSizes = lengths
	jobs := make([]job, 0, 2*cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		jobs = append(jobs, job{cfg, false, src.Child("fixed", fmt.Sprint(trial))})
		jobs = append(jobs, job{mixCfg, true, src.Child("mixed", fmt.Sprint(trial))})
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (TrialOutcome, error) {
		return RunCollisionTrial(jobs[i].cfg, SelUniform, idBits, jobs[i].src)
	})
	if err != nil {
		return LengthAblationResult{}, err
	}
	if err := foldTrialObs(cfg.Obs, outs, func(i int) string {
		if jobs[i].isMix {
			return "ablation-length mixed"
		}
		return "ablation-length fixed"
	}); err != nil {
		return LengthAblationResult{}, err
	}
	var fixed, mixed stats.Accumulator
	for i, out := range outs {
		if jobs[i].isMix {
			mixed.Add(out.CollisionRate)
		} else {
			fixed.Add(out.CollisionRate)
		}
	}
	res.Fixed = fixed.Summary()
	res.Mixed = mixed.Summary()
	res.Model = model.CollisionRate(idBits, float64(cfg.Transmitters))
	res.ModelPoisson = model.CollisionRatePoisson(idBits, float64(cfg.Transmitters))
	return res, nil
}

// Render renders the transaction-length ablation.
func (r LengthAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transaction-length ablation (%d-bit identifiers, T=%d)\n", r.IDBits, r.Config.Transmitters)
	fmt.Fprintf(&b, "model, equal lengths (Eq. 4):      %.6f\n", r.Model)
	fmt.Fprintf(&b, "model, exponential lengths (ext.): %.6f\n", r.ModelPoisson)
	fmt.Fprintf(&b, "measured fixed %dB:    %.6f ± %.4f\n", r.Config.PacketSize, r.Fixed.Mean, r.Fixed.StdDev)
	fmt.Fprintf(&b, "measured mixed %v: %.6f ± %.4f\n", r.Lengths, r.Mixed.Mean, r.Mixed.StdDev)
	return b.String()
}
