package experiment

import (
	"encoding/csv"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"retri/internal/adapt"
	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/dynaddr"
	"retri/internal/flood"
	"retri/internal/metrics"
	"retri/internal/mobility"
	"retri/internal/node"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/shard"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// MultihopArm names one protocol arm of the multi-hop regional sweep.
type MultihopArm string

// Arms under test.
const (
	// MultihopFixed runs today's compile-time identifier width end to end
	// over the flood relay: one global H regardless of where a node is.
	MultihopFixed MultihopArm = "fixed"
	// MultihopAdaptive closes the loop regionally: each sender's
	// turnover-aware estimator feeds Equation 4 and the chosen width rides
	// in-band, so dense-core nodes converge on wide identifiers while
	// sparse-edge nodes narrow theirs — divergent widths meeting in the
	// same multi-hop air.
	MultihopAdaptive MultihopArm = "adaptive-turnover"
	// MultihopDynaddr is the conventional baseline: claim-listen-defend
	// short addresses plus address-keyed fragmentation, paying explicit
	// re-allocation traffic every time churn wipes a node's address.
	MultihopDynaddr MultihopArm = "dynaddr"
)

// AllMultihopArms lists the arms in sweep order.
func AllMultihopArms() []MultihopArm {
	return []MultihopArm{MultihopFixed, MultihopAdaptive, MultihopDynaddr}
}

// ParseMultihopArms parses a comma-separated arm list for the CLI.
func ParseMultihopArms(s string) ([]MultihopArm, error) {
	if s == "all" {
		return AllMultihopArms(), nil
	}
	known := map[MultihopArm]bool{MultihopFixed: true, MultihopAdaptive: true, MultihopDynaddr: true}
	var out []MultihopArm
	for _, part := range strings.Split(s, ",") {
		a := MultihopArm(strings.TrimSpace(part))
		if a == "" {
			continue
		}
		if !known[a] {
			return nil, fmt.Errorf("experiment: unknown multihop arm %q (want fixed, adaptive-turnover, dynaddr or all)", a)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty multihop arm list %q", s)
	}
	return out, nil
}

// widthPolicy maps an AFF arm to its identifier-width policy.
func (a MultihopArm) widthPolicy() WidthPolicyKind {
	if a == MultihopAdaptive {
		return WidthAdaptiveTurnover
	}
	return WidthFixed
}

// MultihopConfig parameterizes the multi-hop regional-dynamics experiment:
// a dense sender cluster roams the core of a large field while sparse
// walkers cover its edge, every frame rides the duplicate-suppressing
// flood relay toward a central sink, and the arms are compared on
// delivery, goodput, per-region width tracking and (for dynaddr) the
// explicit re-allocation traffic churn forces.
type MultihopConfig struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Senders stream packets at the sink (node 0); they are nodes 1..N.
	Senders int
	// CoreSenders of them roam as one dense cluster confined to the
	// central ninth of the field (reference-point group mobility); the
	// rest are independent random-waypoint walkers over the whole field.
	CoreSenders int
	// PacketSize is the application payload in bytes.
	PacketSize int
	// Duration is simulated time per trial.
	Duration time.Duration
	// Trials per arm.
	Trials int
	// Arms are the protocol arms compared.
	Arms []MultihopArm
	// Regions splits the field into a Regions x Regions grid for the
	// per-region achieved-vs-optimal width table.
	Regions int
	// FixedBits is the fixed arm's global identifier width.
	FixedBits int
	// MinBits and MaxBits clamp the adaptive arm, as in DynamicsConfig.
	MinBits, MaxBits int
	// AddrBits is the dynaddr arm's short-address width.
	AddrBits int
	// TTL is the relay hop budget; a fragment is audible within TTL+1
	// hops of its origin.
	TTL int
	// DedupWindow and ForwardJitter parameterize the relay (see
	// flood.RelayConfig).
	DedupWindow   time.Duration
	ForwardJitter time.Duration
	// Area is the deployment region; the sink sits at its center.
	Area mobility.Area
	// Range is the unit-disk radio range. A field several ranges across
	// is what makes the sweep genuinely multi-hop.
	Range float64
	// MinSpeed, MaxSpeed and Pause drive both mobility models.
	MinSpeed, MaxSpeed float64
	Pause              time.Duration
	// GroupSpread is the member offset radius of the core cluster.
	GroupSpread float64
	// Duty duty-cycles every sender: multi-hop churn is the regime the
	// dynaddr baseline pays for and RETRI absorbs.
	Duty mobility.DutyCycle
	// SampleInterval spaces the per-region width probes.
	SampleInterval time.Duration
	// ReassemblyTimeout bounds partial-packet state.
	ReassemblyTimeout time.Duration
	// OracleRetain is the oracle's closed-transaction retention; it must
	// cover the worst relay latency or late relayed copies would be
	// misread as fresh transactions. Zero selects a safe default.
	OracleRetain time.Duration
	// Params overrides the radio parameters when non-nil.
	Params *radio.Params
	// ShardWindow, when positive, drains each trial under the
	// region-sharded driver exactly as in DynamicsConfig.
	ShardWindow time.Duration
	// Parallelism, Obs and Hooks behave exactly as in DynamicsConfig.
	Parallelism int
	Obs         *Obs
	Hooks       RunHooks
}

// DefaultMultihopConfig is a 12-sender deployment on a 90x90 field with an
// 18-unit radio range — five ranges across, so edge traffic needs the
// relay to reach the sink — with half the senders clustered in the core.
// The radio runs at 250 kb/s (802.15.4-class): under the saturating
// continuous workload the flood needs that headroom for fragments to
// actually propagate TTL hops, which is what lets each region's
// estimators hear the density the omniscient audibility truth charges
// them with. The 5ms forward jitter keeps the relay's lifetime stretch
// (jitter x hops) small against the estimator's idle gap for the same
// reason.
func DefaultMultihopConfig() MultihopConfig {
	params := radio.DefaultParams()
	params.BitRate = 250e3
	return MultihopConfig{
		Seed:              1,
		Senders:           12,
		CoreSenders:       6,
		PacketSize:        48,
		Duration:          2 * time.Minute,
		Trials:            3,
		Arms:              AllMultihopArms(),
		Regions:           3,
		FixedBits:         10,
		MinBits:           4,
		MaxBits:           16,
		AddrBits:          10,
		TTL:               3,
		DedupWindow:       10 * time.Second,
		ForwardJitter:     5 * time.Millisecond,
		Area:              mobility.Area{W: 90, H: 90},
		Range:             18,
		MinSpeed:          1,
		MaxSpeed:          3,
		Pause:             2 * time.Second,
		GroupSpread:       6,
		Duty:              mobility.DutyCycle{MeanUp: 60 * time.Second, MeanDown: 8 * time.Second},
		SampleInterval:    time.Second,
		ReassemblyTimeout: 250 * time.Millisecond,
		OracleRetain:      10 * time.Second,
		Params:            &params,
	}
}

// Validate rejects configurations the trial loop cannot honor.
func (cfg MultihopConfig) Validate() error {
	if cfg.Senders < 1 || cfg.Trials < 1 || len(cfg.Arms) == 0 {
		return fmt.Errorf("experiment: degenerate multihop config (senders=%d trials=%d arms=%d)",
			cfg.Senders, cfg.Trials, len(cfg.Arms))
	}
	if cfg.CoreSenders < 0 || cfg.CoreSenders > cfg.Senders {
		return fmt.Errorf("experiment: multihop core senders %d outside [0, %d]", cfg.CoreSenders, cfg.Senders)
	}
	if cfg.Duration <= 0 || cfg.SampleInterval <= 0 || cfg.SampleInterval > cfg.Duration {
		return fmt.Errorf("experiment: multihop needs 0 < sample interval <= duration, got %v/%v", cfg.SampleInterval, cfg.Duration)
	}
	if cfg.PacketSize < 1 {
		return fmt.Errorf("experiment: multihop packet size %d must be positive", cfg.PacketSize)
	}
	if cfg.Regions < 1 || cfg.Regions > 16 {
		return fmt.Errorf("experiment: multihop region grid %d outside [1, 16]", cfg.Regions)
	}
	if cfg.FixedBits < 1 || cfg.FixedBits > 32 {
		return fmt.Errorf("experiment: fixed width %d outside [1, 32]", cfg.FixedBits)
	}
	if cfg.MinBits < 1 || cfg.MaxBits < cfg.MinBits || cfg.MaxBits > 32 {
		return fmt.Errorf("experiment: adaptive width clamp [%d, %d] invalid", cfg.MinBits, cfg.MaxBits)
	}
	if cfg.AddrBits < 1 || cfg.AddrBits > 16 {
		return fmt.Errorf("experiment: dynaddr address width %d outside [1, 16]", cfg.AddrBits)
	}
	if cfg.TTL < 1 || cfg.TTL > flood.MaxTTL {
		return fmt.Errorf("experiment: multihop ttl %d outside [1, %d]", cfg.TTL, flood.MaxTTL)
	}
	if cfg.DedupWindow <= 0 || cfg.ForwardJitter < 0 || cfg.OracleRetain < 0 {
		return fmt.Errorf("experiment: multihop relay timing (dedup %v, jitter %v, retain %v) invalid",
			cfg.DedupWindow, cfg.ForwardJitter, cfg.OracleRetain)
	}
	if !(cfg.Area.W > 0) || !(cfg.Area.H > 0) || math.IsInf(cfg.Area.W, 0) || math.IsInf(cfg.Area.H, 0) {
		return fmt.Errorf("experiment: multihop area %vx%v invalid", cfg.Area.W, cfg.Area.H)
	}
	if !(cfg.Range > 0) {
		return fmt.Errorf("experiment: multihop radio range %v must be positive", cfg.Range)
	}
	if !(cfg.MinSpeed > 0) || cfg.MaxSpeed < cfg.MinSpeed || cfg.Pause < 0 {
		return fmt.Errorf("experiment: multihop speeds [%v, %v] pause %v invalid", cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
	}
	if !(cfg.GroupSpread >= 0) || math.IsInf(cfg.GroupSpread, 0) {
		return fmt.Errorf("experiment: multihop group spread %v invalid", cfg.GroupSpread)
	}
	if err := cfg.Duty.Validate(); err != nil {
		return err
	}
	if cfg.ShardWindow < 0 {
		return fmt.Errorf("experiment: multihop shard window %v must be non-negative", cfg.ShardWindow)
	}
	for _, a := range cfg.Arms {
		if a != MultihopFixed && a != MultihopAdaptive && a != MultihopDynaddr {
			return fmt.Errorf("experiment: unknown multihop arm %q", a)
		}
	}
	return nil
}

// MultihopRegion summarizes width tracking inside one grid cell of the
// field, steady state only. Index is row-major over the Regions x Regions
// grid.
type MultihopRegion struct {
	Index int
	// MeanT is the mean true density (hop-limited audible senders,
	// including self) of senders sampled in this cell.
	MeanT float64
	// AchievedH and OptimalH are the mean width in use and the mean
	// clamped Equation 4 optimum for the true density; Gap is the mean
	// absolute difference.
	AchievedH float64
	OptimalH  float64
	Gap       float64
	// Samples counts (sender, instant) observations folded in.
	Samples int64
}

// MultihopOutcome reports one trial.
type MultihopOutcome struct {
	// Offered counts packets the workload generators handed down;
	// SendFailures counts sends refused (radio down, or ErrNoAddress
	// during a dynaddr claim — the baseline's availability gap).
	Offered      int64
	SendFailures int64
	// TruthDelivered is the sink's ground-truth count (AFF arms only).
	TruthDelivered int64
	// Delivered is what the arm's own sink stack reassembled.
	Delivered int64
	// DeliveredBits / TxBits is the measured goodput efficiency.
	DeliveredBits int64
	TxBits        int64
	CollisionRate float64
	Goodput       float64
	// MeanAchievedH, MeanOptimalH and HGap summarize the steady state
	// across all regions (AFF arms only).
	MeanAchievedH float64
	MeanOptimalH  float64
	HGap          float64
	// Churn tallies duty-cycle membership events.
	Churn mobility.ChurnCounters
	// Relay sums relay counters over every node.
	Relay flood.RelayStats
	// Alloc sums allocator counters over every node (dynaddr arm only).
	Alloc dynaddr.Stats
	// RegionT/Ach/Opt/Gap/N are row-major per-region sums over steady
	// samples (AFF arms only); fixed-length, so trials merge index by
	// index regardless of execution order.
	RegionT   []float64
	RegionAch []float64
	RegionOpt []float64
	RegionGap []float64
	RegionN   []int64
	// Samples is the field-wide width time series.
	Samples []DynPoint
	// Oracle is the trial's conformance report (AFF arms only — the
	// oracle audits the AFF wire format and is always attached to it).
	Oracle *oracle.Report
	// Obs is the trial's private observability capture, nil unless
	// requested.
	Obs *TrialObs
}

// DeliveryRatio is sink deliveries over offered packets.
func (o MultihopOutcome) DeliveryRatio() float64 {
	if o.Offered == 0 {
		return 0
	}
	return float64(o.Delivered) / float64(o.Offered)
}

// MultihopRow aggregates one arm over trials.
type MultihopRow struct {
	Arm MultihopArm
	// Delivery, Goodput, Collision, AchievedH, OptimalH and Gap summarize
	// the per-trial outcome fields of the same names.
	Delivery  stats.Summary
	Goodput   stats.Summary
	Collision stats.Summary
	AchievedH stats.Summary
	OptimalH  stats.Summary
	Gap       stats.Summary
	// Totals across trials.
	Offered        int64
	SendFailures   int64
	TruthDelivered int64
	Delivered      int64
	Churn          mobility.ChurnCounters
	Relay          flood.RelayStats
	Alloc          dynaddr.Stats
	// Regions is the per-region width table (AFF arms only), sparse cells
	// omitted.
	Regions []MultihopRegion
	// Series is the trial-averaged width time series.
	Series []DynPoint
	// Oracle is the conformance report merged over trials, nil for the
	// dynaddr arm.
	Oracle *oracle.Report
}

// MultihopResult is the full sweep.
type MultihopResult struct {
	Config MultihopConfig
	Rows   []MultihopRow
}

// Multihop runs the sweep: arm x trials.
func Multihop(cfg MultihopConfig) (MultihopResult, error) {
	if err := cfg.Validate(); err != nil {
		return MultihopResult{}, err
	}
	src := xrand.NewSource(cfg.Seed).Child("multihop")
	type job struct {
		arm MultihopArm
		src *xrand.Source
	}
	var jobs []job
	for _, arm := range cfg.Arms {
		for trial := 0; trial < cfg.Trials; trial++ {
			jobs = append(jobs, job{arm, src.Child(string(arm), fmt.Sprint(trial))})
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (MultihopOutcome, error) {
		return RunMultihopTrial(cfg, jobs[i].arm, jobs[i].src)
	})
	if err != nil {
		return MultihopResult{}, err
	}
	wrapped := make([]TrialOutcome, len(outs))
	for i := range outs {
		wrapped[i].Obs = outs[i].Obs
	}
	if err := foldTrialObs(cfg.Obs, wrapped, func(i int) string {
		return fmt.Sprintf("multihop %s", multihopLabel(jobs[i].arm))
	}); err != nil {
		return MultihopResult{}, err
	}

	res := MultihopResult{Config: cfg}
	cells := cfg.Regions * cfg.Regions
	type accs struct {
		row                          MultihopRow
		del, good, coll, ach, op, gp stats.Accumulator
		regT, regA, regO, regG       []float64
		regN                         []int64
		sumAch, sumOpt, sumAwake     []float64
		trials                       int
	}
	byRow := make(map[MultihopArm]*accs)
	var order []MultihopArm
	for i, out := range outs {
		arm := jobs[i].arm
		a, ok := byRow[arm]
		if !ok {
			a = &accs{row: MultihopRow{Arm: arm}}
			a.regT = make([]float64, cells)
			a.regA = make([]float64, cells)
			a.regO = make([]float64, cells)
			a.regG = make([]float64, cells)
			a.regN = make([]int64, cells)
			byRow[arm] = a
			order = append(order, arm)
		}
		a.del.Add(out.DeliveryRatio())
		a.good.Add(out.Goodput)
		a.coll.Add(out.CollisionRate)
		a.ach.Add(out.MeanAchievedH)
		a.op.Add(out.MeanOptimalH)
		a.gp.Add(out.HGap)
		a.row.Offered += out.Offered
		a.row.SendFailures += out.SendFailures
		a.row.TruthDelivered += out.TruthDelivered
		a.row.Delivered += out.Delivered
		a.row.Churn.Joins += out.Churn.Joins
		a.row.Churn.Leaves += out.Churn.Leaves
		a.row.Churn.Sleeps += out.Churn.Sleeps
		a.row.Churn.Wakes += out.Churn.Wakes
		a.row.Relay.Merge(out.Relay)
		a.row.Alloc.ClaimsSent += out.Alloc.ClaimsSent
		a.row.Alloc.DefendsSent += out.Alloc.DefendsSent
		a.row.Alloc.AnnouncesSent += out.Alloc.AnnouncesSent
		a.row.Alloc.ControlBits += out.Alloc.ControlBits
		a.row.Alloc.Conflicts += out.Alloc.Conflicts
		a.row.Alloc.Acquisitions += out.Alloc.Acquisitions
		if out.Oracle != nil {
			if a.row.Oracle == nil {
				a.row.Oracle = &oracle.Report{}
			}
			a.row.Oracle.Merge(*out.Oracle)
		}
		for c := 0; c < cells && c < len(out.RegionN); c++ {
			a.regT[c] += out.RegionT[c]
			a.regA[c] += out.RegionAch[c]
			a.regO[c] += out.RegionOpt[c]
			a.regG[c] += out.RegionGap[c]
			a.regN[c] += out.RegionN[c]
		}
		// Sampling instants are deterministic, so per-trial series align
		// index by index and average across trials.
		if a.sumAch == nil && len(out.Samples) > 0 {
			n := len(out.Samples)
			a.sumAch = make([]float64, n)
			a.sumOpt = make([]float64, n)
			a.sumAwake = make([]float64, n)
			a.row.Series = make([]DynPoint, n)
			for s, p := range out.Samples {
				a.row.Series[s].At = p.At
			}
		}
		for s, p := range out.Samples {
			a.sumAch[s] += p.AchievedH
			a.sumOpt[s] += p.OptimalH
			a.sumAwake[s] += p.Awake
		}
		a.trials++
	}
	for _, arm := range order {
		a := byRow[arm]
		a.row.Delivery = a.del.Summary()
		a.row.Goodput = a.good.Summary()
		a.row.Collision = a.coll.Summary()
		a.row.AchievedH = a.ach.Summary()
		a.row.OptimalH = a.op.Summary()
		a.row.Gap = a.gp.Summary()
		for c := 0; c < cells; c++ {
			if a.regN[c] == 0 {
				continue
			}
			n := float64(a.regN[c])
			a.row.Regions = append(a.row.Regions, MultihopRegion{
				Index:     c,
				MeanT:     a.regT[c] / n,
				AchievedH: a.regA[c] / n,
				OptimalH:  a.regO[c] / n,
				Gap:       a.regG[c] / n,
				Samples:   a.regN[c],
			})
		}
		for s := range a.row.Series {
			n := float64(a.trials)
			a.row.Series[s].AchievedH = a.sumAch[s] / n
			a.row.Series[s].OptimalH = a.sumOpt[s] / n
			a.row.Series[s].Awake = a.sumAwake[s] / n
		}
		res.Rows = append(res.Rows, a.row)
	}
	return res, nil
}

func multihopLabel(a MultihopArm) string { return "arm=" + string(a) }

// multihopField is the per-trial scaffolding every arm shares: the engine,
// medium, churner, and the reachability and region geometry closures.
type multihopField struct {
	cfg     MultihopConfig
	eng     *sim.Engine
	disk    *radio.UnitDisk
	med     *radio.Medium
	churner *mobility.Churner
}

const multihopSink radio.NodeID = 0

// awake reports whether a node's RAM and radio are up; the sink always is.
func (f *multihopField) awake(id radio.NodeID) bool {
	return id == multihopSink || f.churner.Awake(id)
}

// audible reports hop-limited reachability: whether a frame originated at
// from can reach to within TTL+1 hops through awake relays (any awake
// node forwards, including the sink). This is the multi-hop analogue of
// one-hop unit-disk visibility, and both the oracle's density audit and
// the region probe's true-density count use exactly this predicate.
func (f *multihopField) audible(from, to radio.NodeID) bool {
	if from == to {
		return true
	}
	if !f.awake(from) || !f.awake(to) {
		return false
	}
	if _, ok := f.disk.Position(from); !ok {
		return false
	}
	visited := map[radio.NodeID]bool{from: true}
	frontier := []radio.NodeID{from}
	for depth := 0; depth < f.cfg.TTL+1 && len(frontier) > 0; depth++ {
		var next []radio.NodeID
		for _, u := range frontier {
			for _, nb := range f.disk.Neighbors(u) {
				if visited[nb] || !f.awake(nb) {
					continue
				}
				if nb == to {
					return true
				}
				visited[nb] = true
				next = append(next, nb)
			}
		}
		frontier = next
	}
	return false
}

// regionOf maps a position to its row-major grid cell.
func (f *multihopField) regionOf(p radio.Point) int {
	r := f.cfg.Regions
	cx := int(p.X / f.cfg.Area.W * float64(r))
	cy := int(p.Y / f.cfg.Area.H * float64(r))
	if cx < 0 {
		cx = 0
	}
	if cx >= r {
		cx = r - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= r {
		cy = r - 1
	}
	return cy*r + cx
}

// startMotion wires the trial's mobility: the first CoreSenders roam as
// one cluster confined to the central ninth of the field, the rest walk
// the whole field, and every sender is duty-cycled.
func (f *multihopField) startMotion(src *xrand.Source, register func(id radio.NodeID)) error {
	cfg := f.cfg
	var core []radio.NodeID
	for i := 1; i <= cfg.Senders; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		if i <= cfg.CoreSenders {
			core = append(core, id)
		} else {
			wcfg := mobility.WaypointConfig{
				Area:     cfg.Area,
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				Pause:    cfg.Pause,
			}
			if _, err := mobility.StartWaypoint(f.eng, f.disk, id, wcfg, src.Stream("mob", label), cfg.Duration); err != nil {
				return err
			}
		}
		register(id)
		if err := f.churner.StartDutyCycle(id, cfg.Duty, src.Stream("duty", label)); err != nil {
			return err
		}
	}
	if len(core) > 0 {
		// The cluster's reference point roams only the central ninth, so
		// its members stay a persistent dense pocket around the sink while
		// the walkers thin out toward the edges — the density contrast the
		// per-region table measures.
		gcfg := mobility.GroupConfig{
			Waypoint: mobility.WaypointConfig{
				Area:     mobility.Area{W: cfg.Area.W / 3, H: cfg.Area.H / 3},
				Origin:   radio.Point{X: cfg.Area.W / 3, Y: cfg.Area.H / 3},
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				Pause:    cfg.Pause,
			},
			Spread: cfg.GroupSpread,
		}
		if _, err := mobility.StartGroup(f.eng, f.disk, core, gcfg, src.Stream("group"), cfg.Duration); err != nil {
			return err
		}
	}
	return nil
}

func (f *multihopField) relayConfig(keyer flood.Keyer) flood.RelayConfig {
	return flood.RelayConfig{
		TTL:           f.cfg.TTL,
		DedupWindow:   f.cfg.DedupWindow,
		ForwardJitter: f.cfg.ForwardJitter,
		Keyer:         keyer,
	}
}

// drain runs the trial's engine to completion, honoring ShardWindow.
func (f *multihopField) drain() {
	if f.cfg.ShardWindow > 0 {
		shard.DrainAdopted(f.eng, f.cfg.ShardWindow)
	} else {
		f.eng.Run()
	}
}

// RunMultihopTrial executes one trial of one arm: cfg.Senders duty-cycled
// mobile streamers flooding toward a central sink across several radio
// ranges, with per-region width probes (AFF arms) or allocation-overhead
// accounting (dynaddr).
func RunMultihopTrial(cfg MultihopConfig, arm MultihopArm, src *xrand.Source) (MultihopOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	disk := radio.NewUnitDisk(cfg.Range)
	med := radio.NewMedium(eng, disk, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}
	churner := mobility.NewChurner(eng, cfg.Duration)
	churner.SetDisk(disk)
	churner.SetTracer(tracer)
	f := &multihopField{cfg: cfg, eng: eng, disk: disk, med: med, churner: churner}
	disk.Place(multihopSink, radio.Point{X: cfg.Area.W / 2, Y: cfg.Area.H / 2})

	if arm == MultihopDynaddr {
		return runMultihopDynaddr(f, src, trialObs)
	}
	return runMultihopAFF(f, arm, src, trialObs)
}

// runMultihopAFF is the trial body for the fixed and adaptive arms.
func runMultihopAFF(f *multihopField, arm MultihopArm, src *xrand.Source, trialObs *TrialObs) (MultihopOutcome, error) {
	cfg := f.cfg
	eng, disk, med := f.eng, f.disk, f.med
	policy := arm.widthPolicy()
	affCfg := aff.Config{
		Space:             core.MustSpace(cfg.FixedBits),
		MTU:               params(f).MTU,
		Instrument:        true,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
	}
	if policy.adaptive() {
		affCfg.Space = core.MustSpace(cfg.MaxBits)
		affCfg.AdaptiveWidth = true
	}
	sp := newTrialSpanRelay(cfg.Obs, trialObs, affCfg, eng.Now, flood.StripEnvelope)
	if sp != nil {
		med.SetFateObserver(sp)
	}

	// The oracle is always on for the AFF arms: it strips the relay
	// envelope before decoding and judges density audibility by the same
	// hop-limited reachability the relay provides. Retention must outlive
	// the worst relay latency (see oracle.Config.Retain).
	retain := cfg.OracleRetain
	if retain == 0 {
		retain = cfg.DedupWindow
	}
	orc, err := oracle.New(oracle.Config{
		AFF:     affCfg,
		Topo:    disk,
		Now:     eng.Now,
		Retain:  retain,
		Unwrap:  flood.StripEnvelope,
		Visible: f.audible,
	})
	if err != nil {
		return MultihopOutcome{}, err
	}
	med.SetFrameObserver(orc)
	audit := func(id radio.NodeID) func(aff.Packet) {
		return func(p aff.Packet) { orc.VerifyDelivered(id, p) }
	}

	keyer := flood.AFFKeyer(affCfg)
	newRelay := func(r *radio.Radio, label string) (*flood.Relay, error) {
		return flood.NewRelay(f.relayConfig(keyer), eng, r, src.Stream("relay", label))
	}

	rxRadio := med.MustAttach(multihopSink)
	truth := aff.NewTruthReassembler(affCfg, eng.Now)
	rxEst := density.NewPolicy(policy.estimatorPolicy(), 0, 0, eng.Now)
	rxSel, err := makeSelector(SelListening, affCfg.Space, src.Stream("rx-sel"), rxEst.Window)
	if err != nil {
		return MultihopOutcome{}, err
	}
	rxRelay, err := newRelay(rxRadio, "0")
	if err != nil {
		return MultihopOutcome{}, err
	}
	rxOpts := node.AFFOptions{
		Estimator: rxEst,
		Truth:     truth,
		Engine:    eng,
		OnDeliver: audit(multihopSink),
		Relay:     rxRelay,
	}
	if sp != nil {
		rxOpts.Span = sp
	}
	rx, err := node.NewAFF(rxRadio, affCfg, rxSel, rxOpts)
	if err != nil {
		return MultihopOutcome{}, err
	}

	dataBits := 8 * cfg.PacketSize
	ctls := make(map[radio.NodeID]*adapt.Controller)
	ests := make(map[radio.NodeID]density.TEstimator)
	drivers := make(map[radio.NodeID]*node.AFFDriver)
	radios := []*radio.Radio{rxRadio}
	relays := []*flood.Relay{rxRelay}
	var gens []*workload.Continuous
	for i := 1; i <= cfg.Senders; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		txRadio := med.MustAttach(id)
		radios = append(radios, txRadio)
		est := density.NewPolicy(policy.estimatorPolicy(), 0, 0, eng.Now)
		ests[id] = est
		sel, err := makeSelector(SelListening, affCfg.Space, src.Stream("sel", label), est.Window)
		if err != nil {
			return MultihopOutcome{}, err
		}
		rl, err := newRelay(txRadio, label)
		if err != nil {
			return MultihopOutcome{}, err
		}
		relays = append(relays, rl)
		opts := node.AFFOptions{Estimator: est, ObserveOwn: true, Engine: eng, OnDeliver: audit(id), Relay: rl}
		if sp != nil {
			opts.Span = sp
		}
		if policy.adaptive() {
			actlCfg := adapt.Config{DataBits: dataBits, Min: cfg.MinBits, Max: cfg.MaxBits}
			if sp != nil {
				nid := id
				actlCfg.OnChange = func(from, to int) { sp.NoteWidthChange(nid, from, to) }
			}
			ctl, err := adapt.New(actlCfg, est)
			if err != nil {
				return MultihopOutcome{}, err
			}
			ctls[id] = ctl
			opts.Width = ctl
		}
		d, err := node.NewAFF(txRadio, affCfg, sel, opts)
		if err != nil {
			return MultihopOutcome{}, err
		}
		drivers[id] = d
		gen := workload.NewContinuousMixed(eng, d, []int{cfg.PacketSize}, 0, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		gens = append(gens, gen)
	}
	if err := f.startMotion(src, func(id radio.NodeID) {
		f.churner.Register(id, drivers[id])
	}); err != nil {
		return MultihopOutcome{}, err
	}

	// The per-region probe: each awake placed sender's true density is the
	// oracle's smoothed hop-limited audible-transaction count (the exact
	// quantity its conformance report scores), its clamped Equation 4
	// optimum follows, and both land in the cell under the sender's
	// current position. Steady state is the second half; only steady
	// samples feed the oracle's Probe, so conformance percentiles are not
	// diluted by the warm-up transient.
	widthOf := func(id radio.NodeID) int {
		if ctl, ok := ctls[id]; ok {
			return ctl.Current()
		}
		return cfg.FixedBits
	}
	cells := cfg.Regions * cfg.Regions
	out := MultihopOutcome{
		RegionT:   make([]float64, cells),
		RegionAch: make([]float64, cells),
		RegionOpt: make([]float64, cells),
		RegionGap: make([]float64, cells),
		RegionN:   make([]int64, cells),
	}
	var sumAch, sumOpt, sumGap float64
	var steady int
	half := cfg.Duration / 2
	for at := cfg.SampleInterval; at <= cfg.Duration; at += cfg.SampleInterval {
		at := at
		eng.ScheduleAt(at, func() {
			var ach, opt float64
			n := 0
			for i := 1; i <= cfg.Senders; i++ {
				id := radio.NodeID(i)
				if !f.awake(id) {
					continue
				}
				pos, placed := disk.Position(id)
				if !placed {
					continue
				}
				w := widthOf(id)
				var trueT float64
				var h int
				if at > half {
					trueT, h = orc.Probe(id, ests[id].Estimate(), w, dataBits, cfg.MinBits, cfg.MaxBits)
					sumAch += float64(w)
					sumOpt += float64(h)
					sumGap += math.Abs(float64(w - h))
					steady++
					c := f.regionOf(pos)
					out.RegionT[c] += trueT
					out.RegionAch[c] += float64(w)
					out.RegionOpt[c] += float64(h)
					out.RegionGap[c] += math.Abs(float64(w - h))
					out.RegionN[c]++
				} else {
					// Warm-up samples feed only the time series, from the
					// raw visible count: no Probe, no EMA pollution.
					trueT = float64(orc.VisibleT(id))
					h = oracle.OptimalWidth(dataBits, trueT, cfg.MinBits, cfg.MaxBits)
				}
				ach += float64(w)
				opt += float64(h)
				n++
			}
			p := DynPoint{At: at}
			if n > 0 {
				p.AchievedH = ach / float64(n)
				p.OptimalH = opt / float64(n)
				p.Awake = float64(n)
			}
			out.Samples = append(out.Samples, p)
		})
	}

	f.drain()

	out.TruthDelivered = truth.Stats().Delivered
	out.Delivered = rx.Reassembler().Stats().Delivered
	out.DeliveredBits = rx.Reassembler().Stats().DeliveredBits
	for _, g := range gens {
		out.Offered += g.Stats().PacketsOffered
		out.SendFailures += g.Stats().SendErrors
	}
	for _, r := range radios {
		out.TxBits += r.Meter().TxBits
	}
	for _, rl := range relays {
		out.Relay.Merge(rl.Stats())
	}
	if out.TruthDelivered > 0 {
		lost := out.TruthDelivered - out.Delivered
		if lost < 0 {
			lost = 0
		}
		out.CollisionRate = float64(lost) / float64(out.TruthDelivered)
	}
	if out.TxBits > 0 {
		out.Goodput = float64(out.DeliveredBits) / float64(out.TxBits)
	}
	if steady > 0 {
		out.MeanAchievedH = sumAch / float64(steady)
		out.MeanOptimalH = sumOpt / float64(steady)
		out.HGap = sumGap / float64(steady)
	}
	out.Churn = f.churner.Counters()
	rep := orc.Report()
	out.Oracle = &rep

	if trialObs != nil && trialObs.Metrics != nil {
		label := multihopLabel(arm)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectMultihop(trialObs.Metrics, label, out)
		if snap, ok := rxEst.(density.Snapshotter); ok {
			snap.SnapshotInto(trialObs.Metrics, label)
		}
		out.Oracle.SnapshotInto(trialObs.Metrics, label)
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// runMultihopDynaddr is the trial body for the conventional baseline:
// claim-listen-defend short addresses, address-keyed fragmentation, every
// frame (control and data) relayed with the same hop budget as the AFF
// arms. There is no identifier-width story here — the columns that matter
// are the allocation traffic and the availability gap under churn.
func runMultihopDynaddr(f *multihopField, src *xrand.Source, trialObs *TrialObs) (MultihopOutcome, error) {
	cfg := f.cfg
	eng, med := f.eng, f.med
	dcfg := dynaddr.Config{
		AddrBits: cfg.AddrBits,
		// Keepalives at a slow steady rate: enough that defended addresses
		// stay visible across the heard-TTL, honest enough to charge the
		// baseline its standing control overhead. The horizon stops the
		// keepalive chain so the trial's event queue drains.
		AnnounceInterval: 10 * time.Second,
		Horizon:          cfg.Duration,
	}
	keyer := flood.DigestKeyer()

	newNode := func(id radio.NodeID, label string) (*dynaddr.Node, *flood.Relay, *radio.Radio, error) {
		r := med.MustAttach(id)
		n, err := dynaddr.NewNode(eng, r, dcfg, src.Stream("alloc", label))
		if err != nil {
			return nil, nil, nil, err
		}
		rl, err := flood.NewRelay(f.relayConfig(keyer), eng, r, src.Stream("relay", label))
		if err != nil {
			return nil, nil, nil, err
		}
		n.SetRelay(rl)
		return n, rl, r, nil
	}

	sink, sinkRelay, sinkRadio, err := newNode(multihopSink, "0")
	if err != nil {
		return MultihopOutcome{}, err
	}
	sink.Start()
	nodes := []*dynaddr.Node{sink}
	relays := []*flood.Relay{sinkRelay}
	radios := []*radio.Radio{sinkRadio}
	byID := make(map[radio.NodeID]*dynaddr.Node)
	var gens []*workload.Continuous
	for i := 1; i <= cfg.Senders; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		n, rl, r, err := newNode(id, label)
		if err != nil {
			return MultihopOutcome{}, err
		}
		n.Start()
		nodes = append(nodes, n)
		relays = append(relays, rl)
		radios = append(radios, r)
		byID[id] = n
		gen := workload.NewContinuousMixed(eng, n, []int{cfg.PacketSize}, 0, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		gens = append(gens, gen)
	}
	if err := f.startMotion(src, func(id radio.NodeID) {
		f.churner.Register(id, byID[id])
	}); err != nil {
		return MultihopOutcome{}, err
	}

	f.drain()

	out := MultihopOutcome{
		Delivered:     sink.PacketsDelivered(),
		DeliveredBits: sink.Reassembler().Stats().DeliveredBits,
	}
	for _, g := range gens {
		out.Offered += g.Stats().PacketsOffered
		out.SendFailures += g.Stats().SendErrors
	}
	for _, r := range radios {
		out.TxBits += r.Meter().TxBits
	}
	for _, rl := range relays {
		out.Relay.Merge(rl.Stats())
	}
	for _, n := range nodes {
		st := n.Allocator().Stats()
		out.Alloc.ClaimsSent += st.ClaimsSent
		out.Alloc.DefendsSent += st.DefendsSent
		out.Alloc.AnnouncesSent += st.AnnouncesSent
		out.Alloc.ControlBits += st.ControlBits
		out.Alloc.Conflicts += st.Conflicts
		out.Alloc.Acquisitions += st.Acquisitions
	}
	if out.TxBits > 0 {
		out.Goodput = float64(out.DeliveredBits) / float64(out.TxBits)
	}
	out.Churn = f.churner.Counters()

	if trialObs != nil && trialObs.Metrics != nil {
		label := multihopLabel(MultihopDynaddr)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectMultihop(trialObs.Metrics, label, out)
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// params resolves the trial's radio parameters.
func params(f *multihopField) radio.Params {
	if f.cfg.Params != nil {
		return *f.cfg.Params
	}
	return radio.DefaultParams()
}

// collectMultihop records one trial's counters and steady-state gauges.
func collectMultihop(reg *metrics.Registry, label string, out MultihopOutcome) {
	reg.Counter("mh_offered_total", label).Add(out.Offered)
	reg.Counter("mh_send_failures_total", label).Add(out.SendFailures)
	reg.Counter("mh_truth_delivered_total", label).Add(out.TruthDelivered)
	reg.Counter("mh_delivered_total", label).Add(out.Delivered)
	reg.Counter("mh_delivered_bits_total", label).Add(out.DeliveredBits)
	reg.Counter("mh_tx_bits_total", label).Add(out.TxBits)
	reg.Counter("mh_relay_forwarded_total", label).Add(out.Relay.Forwarded)
	reg.Counter("mh_relay_forwarded_bits_total", label).Add(out.Relay.ForwardedBits)
	reg.Counter("mh_relay_suppressed_total", label).Add(out.Relay.Suppressed)
	reg.Counter("mh_relay_expired_total", label).Add(out.Relay.Expired)
	reg.Counter("mh_relay_congested_total", label).Add(out.Relay.Congested)
	reg.Counter("mh_alloc_claims_total", label).Add(out.Alloc.ClaimsSent)
	reg.Counter("mh_alloc_control_bits_total", label).Add(out.Alloc.ControlBits)
	reg.Counter("mh_alloc_acquisitions_total", label).Add(out.Alloc.Acquisitions)
	reg.Counter("churn_sleeps_total", label).Add(out.Churn.Sleeps)
	reg.Counter("churn_wakes_total", label).Add(out.Churn.Wakes)
	reg.Gauge("mh_achieved_h_steady", label).SetMax(out.MeanAchievedH)
	reg.Gauge("mh_optimal_h_steady", label).SetMax(out.MeanOptimalH)
	reg.Gauge("mh_h_gap_steady", label).SetMax(out.HGap)
}

// Render renders the sweep: the arm table, the per-region width table and
// the oracle conformance table.
func (res MultihopResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-hop regional dynamics (%d senders, %d core, %v x %d trials, %gx%g area, range %g, ttl %d)\n",
		res.Config.Senders, res.Config.CoreSenders, res.Config.Duration, res.Config.Trials,
		res.Config.Area.W, res.Config.Area.H, res.Config.Range, res.Config.TTL)
	fmt.Fprintf(&b, "%-17s %18s %8s %8s %6s %6s %12s %9s %9s %8s %10s %11s %8s\n",
		"arm", "delivery", "goodput", "collide", "achH", "optH", "gap",
		"fwd", "supp", "cong", "allocMsgs", "allocBits", "sendFail")
	for _, r := range res.Rows {
		allocMsgs := r.Alloc.ClaimsSent + r.Alloc.DefendsSent + r.Alloc.AnnouncesSent
		fmt.Fprintf(&b, "%-17s %9.4f ± %.4f %8.4f %8.4f %6.2f %6.2f %5.2f ± %.2f %9d %9d %8d %10d %11d %8d\n",
			r.Arm,
			r.Delivery.Mean, r.Delivery.StdDev,
			r.Goodput.Mean, r.Collision.Mean,
			r.AchievedH.Mean, r.OptimalH.Mean,
			r.Gap.Mean, r.Gap.StdDev,
			r.Relay.Forwarded, r.Relay.Suppressed, r.Relay.Congested,
			allocMsgs, r.Alloc.ControlBits, r.SendFailures)
	}
	hasRegions := false
	for _, r := range res.Rows {
		if len(r.Regions) > 0 {
			hasRegions = true
			break
		}
	}
	if hasRegions {
		fmt.Fprintf(&b, "\nPer-region width tracking (%dx%d grid, steady state; achieved vs clamped Eq. 4 optimum for the true hop-limited density)\n",
			res.Config.Regions, res.Config.Regions)
		fmt.Fprintf(&b, "%-17s %-8s %8s %8s %8s %8s %9s\n",
			"arm", "region", "meanT", "achH", "optH", "|gap|", "samples")
		for _, r := range res.Rows {
			for _, reg := range r.Regions {
				fmt.Fprintf(&b, "%-17s %d,%-6d %8.2f %8.2f %8.2f %8.2f %9d\n",
					r.Arm, reg.Index/res.Config.Regions, reg.Index%res.Config.Regions,
					reg.MeanT, reg.AchievedH, reg.OptimalH, reg.Gap, reg.Samples)
			}
		}
	}
	hasOracle := false
	for _, r := range res.Rows {
		if r.Oracle != nil {
			hasOracle = true
			break
		}
	}
	if hasOracle {
		fmt.Fprintf(&b, "\nOracle conformance (omniscient, relay-aware; gaps in bits vs Eq. 4 optimum)\n")
		fmt.Fprintf(&b, "%-17s %8s %8s %8s %8s %9s %8s %12s\n",
			"arm", "estP50", "estP95", "|gap|", "gapP95", "audited", "collide", "violations")
		for _, r := range res.Rows {
			o := r.Oracle
			if o == nil {
				continue
			}
			fmt.Fprintf(&b, "%-17s %8.2f %8.2f %8.2f %8.2f %9d %8d %12s\n",
				r.Arm,
				o.EstErrorPercentile(50), o.EstErrorPercentile(95),
				o.MeanAbsWidthGap(), o.WidthGapPercentile(95),
				o.PacketsAudited, o.CollisionEvents,
				fmt.Sprintf("%d/%d/%d", o.ConservationViolations, o.Misdeliveries, o.FreshnessViolations))
		}
	}
	return b.String()
}

// CSV renders the sweep for plotting. Summary records (kind=summary) carry
// one row per arm, region records (kind=region) one row per populated grid
// cell, and time-series records (kind=h_t) the trial-averaged field-wide
// widths per sample instant.
func (res MultihopResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"kind", "arm", "region", "t_seconds",
		"delivery", "delivery_stddev", "goodput", "collision_rate",
		"achieved_h", "optimal_h", "h_gap", "h_gap_stddev", "mean_t", "awake", "samples",
		"offered", "send_failures", "truth_delivered", "delivered",
		"relay_forwarded", "relay_suppressed", "relay_congested",
		"alloc_msgs", "alloc_bits", "alloc_conflicts", "alloc_acquisitions",
		"sleeps", "wakes", "trials"})
	for _, r := range res.Rows {
		allocMsgs := r.Alloc.ClaimsSent + r.Alloc.DefendsSent + r.Alloc.AnnouncesSent
		_ = w.Write([]string{"summary", string(r.Arm), "", "",
			formatFloat(r.Delivery.Mean), formatFloat(r.Delivery.StdDev),
			formatFloat(r.Goodput.Mean), formatFloat(r.Collision.Mean),
			formatFloat(r.AchievedH.Mean), formatFloat(r.OptimalH.Mean),
			formatFloat(r.Gap.Mean), formatFloat(r.Gap.StdDev), "", "", "",
			strconv.FormatInt(r.Offered, 10), strconv.FormatInt(r.SendFailures, 10),
			strconv.FormatInt(r.TruthDelivered, 10), strconv.FormatInt(r.Delivered, 10),
			strconv.FormatInt(r.Relay.Forwarded, 10), strconv.FormatInt(r.Relay.Suppressed, 10),
			strconv.FormatInt(r.Relay.Congested, 10),
			strconv.FormatInt(allocMsgs, 10), strconv.FormatInt(r.Alloc.ControlBits, 10),
			strconv.FormatInt(r.Alloc.Conflicts, 10), strconv.FormatInt(r.Alloc.Acquisitions, 10),
			strconv.FormatInt(r.Churn.Sleeps, 10), strconv.FormatInt(r.Churn.Wakes, 10),
			strconv.Itoa(r.Delivery.N),
		})
	}
	for _, r := range res.Rows {
		for _, reg := range r.Regions {
			_ = w.Write([]string{"region", string(r.Arm), strconv.Itoa(reg.Index), "",
				"", "", "", "",
				formatFloat(reg.AchievedH), formatFloat(reg.OptimalH),
				formatFloat(reg.Gap), "", formatFloat(reg.MeanT), "",
				strconv.FormatInt(reg.Samples, 10),
				"", "", "", "", "", "", "", "", "", "", "", "", "", "",
			})
		}
	}
	for _, r := range res.Rows {
		for _, p := range r.Series {
			_ = w.Write([]string{"h_t", string(r.Arm), "",
				formatFloat(p.At.Seconds()),
				"", "", "", "",
				formatFloat(p.AchievedH), formatFloat(p.OptimalH), "", "", "",
				formatFloat(p.Awake), "",
				"", "", "", "", "", "", "", "", "", "", "", "", "", "",
			})
		}
	}
	w.Flush()
	return sb.String()
}
