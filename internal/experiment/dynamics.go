package experiment

import (
	"encoding/csv"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"retri/internal/adapt"
	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/metrics"
	"retri/internal/mobility"
	"retri/internal/model"
	"retri/internal/node"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/shard"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// DynScenario names a dynamics scenario for the adaptive-width experiment.
type DynScenario string

// Dynamics scenarios under test.
const (
	// DynStationary keeps every node where it was placed — the control.
	DynStationary DynScenario = "stationary"
	// DynWaypoint moves every sender with the random-waypoint model, so
	// the density each node sees drifts as neighborhoods form and
	// dissolve.
	DynWaypoint DynScenario = "waypoint"
	// DynChurn duty-cycles every sender (exponential up/down), so
	// returning nodes relearn the channel from wiped state.
	DynChurn DynScenario = "churn"
	// DynGroup moves the senders as two reference-point-group-mobility
	// clusters, the cleanest generator of correlated partition-and-merge:
	// the halves drift out of mutual range together and back.
	DynGroup DynScenario = "group"
	// DynScript replays the mobility script in DynamicsConfig.Script.
	DynScript DynScenario = "script"
)

// AllDynScenarios lists every named scenario except script, in sweep order.
func AllDynScenarios() []DynScenario {
	return []DynScenario{DynStationary, DynWaypoint, DynChurn, DynGroup}
}

// ParseDynScenarios parses a comma-separated scenario list for the CLI.
func ParseDynScenarios(s string) ([]DynScenario, error) {
	if s == "all" {
		return AllDynScenarios(), nil
	}
	known := map[DynScenario]bool{DynStationary: true, DynWaypoint: true, DynChurn: true, DynGroup: true, DynScript: true}
	var out []DynScenario
	for _, part := range strings.Split(s, ",") {
		k := DynScenario(strings.TrimSpace(part))
		if k == "" {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("experiment: unknown dynamics scenario %q (want stationary, waypoint, churn, group, script or all)", k)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty scenario list %q", s)
	}
	return out, nil
}

// WidthPolicyKind names an identifier-width policy arm.
type WidthPolicyKind string

// Width policies under test.
const (
	// WidthFixed is today's compile-time width: the wire format carries
	// no width field and every transaction uses FixedBits.
	WidthFixed WidthPolicyKind = "fixed"
	// WidthAdaptive closes the loop: each sender's adapt.Controller feeds
	// its density estimate into Equation 4 and the chosen width rides
	// in-band on every fragment (aff.Config.AdaptiveWidth).
	WidthAdaptive WidthPolicyKind = "adaptive"
	// WidthAdaptiveTurnover is the adaptive arm driven by the
	// turnover-aware density estimator (density.PolicyTurnover): an
	// identifier whose final fragment was heard is discounted immediately
	// instead of lingering a full idle gap, closing the estimator's
	// over-count under fast transaction turnover.
	WidthAdaptiveTurnover WidthPolicyKind = "adaptive-turnover"
)

// AllWidthPolicies lists the arms in sweep order.
func AllWidthPolicies() []WidthPolicyKind {
	return []WidthPolicyKind{WidthFixed, WidthAdaptive, WidthAdaptiveTurnover}
}

// ParseWidthPolicies parses a comma-separated policy list for the CLI.
func ParseWidthPolicies(s string) ([]WidthPolicyKind, error) {
	if s == "all" {
		return AllWidthPolicies(), nil
	}
	known := map[WidthPolicyKind]bool{WidthFixed: true, WidthAdaptive: true, WidthAdaptiveTurnover: true}
	var out []WidthPolicyKind
	for _, part := range strings.Split(s, ",") {
		k := WidthPolicyKind(strings.TrimSpace(part))
		if k == "" {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("experiment: unknown width policy %q (want fixed, adaptive, adaptive-turnover or all)", k)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty policy list %q", s)
	}
	return out, nil
}

// adaptive reports whether a policy arm runs the in-band-width wire format.
func (p WidthPolicyKind) adaptive() bool {
	return p == WidthAdaptive || p == WidthAdaptiveTurnover
}

// estimatorPolicy maps a width arm to its density-estimation policy.
func (p WidthPolicyKind) estimatorPolicy() density.Policy {
	if p == WidthAdaptiveTurnover {
		return density.PolicyTurnover
	}
	return density.PolicyIdleGap
}

// DynamicsConfig parameterizes the dynamics experiment: senders stream
// packets at one sink on a unit-disk radio while the scenario moves or
// churns them, and the two width policies are compared on delivery,
// goodput efficiency, collision rate and achieved-vs-optimal identifier
// width over time.
type DynamicsConfig struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Senders stream packets at the sink (node 0); they are nodes 1..N.
	Senders int
	// PacketSize is the application payload in bytes. Its bit size is the
	// D the adaptive controller optimizes against.
	PacketSize int
	// Duration is simulated time per trial.
	Duration time.Duration
	// Trials per (scenario, policy) row.
	Trials int
	// Scenarios are the dynamics swept.
	Scenarios []DynScenario
	// Policies are the width arms compared.
	Policies []WidthPolicyKind
	// FixedBits is the static arm's identifier width (and pool size).
	FixedBits int
	// MinBits and MaxBits clamp the adaptive arm; MaxBits is also its
	// identifier pool width, so the adaptive arm pays for its headroom
	// only through the in-band width field, never through wider-than-
	// chosen identifiers.
	MinBits, MaxBits int
	// Area is the deployment region; the sink sits at its center.
	Area mobility.Area
	// Range is the unit-disk radio range.
	Range float64
	// MinSpeed, MaxSpeed and Pause parameterize DynWaypoint and the
	// reference point of DynGroup.
	MinSpeed, MaxSpeed float64
	Pause              time.Duration
	// GroupSpread is the member offset radius for DynGroup clusters.
	GroupSpread float64
	// Duty parameterizes DynChurn.
	Duty mobility.DutyCycle
	// SampleInterval spaces the achieved-vs-optimal width probes.
	SampleInterval time.Duration
	// Script is the schedule DynScript replays; required iff DynScript is
	// selected. Membership ops may only target senders.
	Script *mobility.Script
	// Params overrides the radio parameters when non-nil.
	Params *radio.Params
	// ReassemblyTimeout bounds partial-packet state, as in Figure 4.
	ReassemblyTimeout time.Duration
	// Oracle attaches the omniscient conformance harness (internal/oracle)
	// to every trial: ground-truth density and Equation 4 optima are
	// sampled at each steady-state probe, every delivered packet is
	// audited, and each row carries a merged oracle.Report. The oracle is
	// strictly passive — enabling it leaves the simulation byte-identical.
	Oracle bool
	// ShardWindow, when positive, runs each trial's engine under the
	// region-sharded driver (internal/shard) in single-tile adopted mode
	// with this lookahead window instead of calling Run directly. The
	// windowed replay preserves the event sequence and final clock
	// exactly, so output is byte-identical to the legacy path — this is
	// the equivalence bridge the sharded core is tested against.
	ShardWindow time.Duration
	// Parallelism, Obs and Hooks behave exactly as in Figure4Config.
	Parallelism int
	Obs         *Obs
	Hooks       RunHooks
}

// DefaultDynamicsConfig is an 8-sender deployment on a 60x60 area with a
// 20-unit radio range: roughly a third of the senders are within range of
// the sink at any instant, so mobility genuinely modulates the density
// each node observes.
func DefaultDynamicsConfig() DynamicsConfig {
	return DynamicsConfig{
		Seed:              1,
		Senders:           8,
		PacketSize:        48,
		Duration:          2 * time.Minute,
		Trials:            5,
		Scenarios:         AllDynScenarios(),
		Policies:          AllWidthPolicies(),
		FixedBits:         10,
		MinBits:           2,
		MaxBits:           16,
		Area:              mobility.Area{W: 60, H: 60},
		Range:             20,
		MinSpeed:          1,
		MaxSpeed:          3,
		Pause:             2 * time.Second,
		Duty:              mobility.DutyCycle{MeanUp: 20 * time.Second, MeanDown: 5 * time.Second},
		GroupSpread:       8,
		SampleInterval:    time.Second,
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

// Validate rejects configurations the trial loop cannot honor.
func (cfg DynamicsConfig) Validate() error {
	if cfg.Senders < 1 || cfg.Trials < 1 || len(cfg.Scenarios) == 0 || len(cfg.Policies) == 0 {
		return fmt.Errorf("experiment: degenerate dynamics config (senders=%d trials=%d scenarios=%d policies=%d)",
			cfg.Senders, cfg.Trials, len(cfg.Scenarios), len(cfg.Policies))
	}
	if cfg.Duration <= 0 || cfg.SampleInterval <= 0 || cfg.SampleInterval > cfg.Duration {
		return fmt.Errorf("experiment: dynamics needs 0 < sample interval <= duration, got %v/%v", cfg.SampleInterval, cfg.Duration)
	}
	if cfg.PacketSize < 1 {
		return fmt.Errorf("experiment: dynamics packet size %d must be positive", cfg.PacketSize)
	}
	if cfg.ShardWindow < 0 {
		return fmt.Errorf("experiment: dynamics shard window %v must be non-negative", cfg.ShardWindow)
	}
	if cfg.FixedBits < 1 || cfg.FixedBits > 32 {
		return fmt.Errorf("experiment: fixed width %d outside [1, 32]", cfg.FixedBits)
	}
	if cfg.MinBits < 1 || cfg.MaxBits < cfg.MinBits || cfg.MaxBits > 32 {
		return fmt.Errorf("experiment: adaptive width clamp [%d, %d] invalid", cfg.MinBits, cfg.MaxBits)
	}
	if !(cfg.Area.W > 0) || !(cfg.Area.H > 0) || math.IsInf(cfg.Area.W, 0) || math.IsInf(cfg.Area.H, 0) {
		return fmt.Errorf("experiment: dynamics area %vx%v invalid", cfg.Area.W, cfg.Area.H)
	}
	if !(cfg.Range > 0) {
		return fmt.Errorf("experiment: dynamics radio range %v must be positive", cfg.Range)
	}
	for _, s := range cfg.Scenarios {
		switch s {
		case DynStationary:
		case DynWaypoint:
			if !(cfg.MinSpeed > 0) || cfg.MaxSpeed < cfg.MinSpeed || cfg.Pause < 0 {
				return fmt.Errorf("experiment: waypoint speeds [%v, %v] pause %v invalid", cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
			}
		case DynChurn:
			if err := cfg.Duty.Validate(); err != nil {
				return err
			}
		case DynGroup:
			if !(cfg.MinSpeed > 0) || cfg.MaxSpeed < cfg.MinSpeed || cfg.Pause < 0 {
				return fmt.Errorf("experiment: group speeds [%v, %v] pause %v invalid", cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
			}
			if !(cfg.GroupSpread >= 0) || math.IsInf(cfg.GroupSpread, 0) {
				return fmt.Errorf("experiment: group spread %v invalid", cfg.GroupSpread)
			}
		case DynScript:
			if cfg.Script == nil {
				return fmt.Errorf("experiment: scenario %q selected without a script", DynScript)
			}
			if max := cfg.Script.MaxNode(); int(max) > cfg.Senders {
				return fmt.Errorf("experiment: mobility script references node %d; this run has nodes 0..%d", max, cfg.Senders)
			}
		default:
			return fmt.Errorf("experiment: unknown dynamics scenario %q", s)
		}
	}
	for _, p := range cfg.Policies {
		if p != WidthFixed && p != WidthAdaptive && p != WidthAdaptiveTurnover {
			return fmt.Errorf("experiment: unknown width policy %q", p)
		}
	}
	return nil
}

// DynPoint is one instant of the achieved-vs-optimal width time series,
// averaged over the senders awake and placed at that instant.
type DynPoint struct {
	At        time.Duration
	AchievedH float64
	OptimalH  float64
	Awake     float64
}

// DynamicsOutcome reports one trial.
type DynamicsOutcome struct {
	// Offered counts packets the workload generators handed down.
	Offered int64
	// TruthDelivered and AFFDelivered are the sink's ground-truth and
	// identifier-keyed packet counts, as in Figure 4.
	TruthDelivered int64
	AFFDelivered   int64
	// DeliveredBits is application payload delivered at the sink; TxBits
	// is every bit any radio transmitted. Their ratio is the measured
	// goodput efficiency — the adaptive arm pays its in-band width field
	// here, honestly.
	DeliveredBits int64
	TxBits        int64
	// CollisionRate is 1 - AFF/Truth (identifier-only loss).
	CollisionRate float64
	// Goodput is DeliveredBits/TxBits (0 when nothing was sent).
	Goodput float64
	// MeanAchievedH, MeanOptimalH and HGap summarize the steady state
	// (second half of the trial): mean width in use, mean omniscient
	// Equation 4 optimum for the true awake-neighbor density, and the
	// mean absolute gap between them.
	MeanAchievedH float64
	MeanOptimalH  float64
	HGap          float64
	// Churn tallies membership events (zero outside churn/script).
	Churn mobility.ChurnCounters
	// Samples is the per-instant width time series.
	Samples []DynPoint
	// Oracle is the trial's conformance report, nil unless
	// DynamicsConfig.Oracle was set.
	Oracle *oracle.Report
	// Obs is the trial's private observability capture, nil unless
	// requested.
	Obs *TrialObs
}

// DeliveryRatio is sink deliveries over offered packets. Under a range-
// limited topology this counts RF unreachability too, not just identifier
// loss — compare CollisionRate for the identifier-only view.
func (o DynamicsOutcome) DeliveryRatio() float64 {
	if o.Offered == 0 {
		return 0
	}
	return float64(o.AFFDelivered) / float64(o.Offered)
}

// DynamicsRow aggregates one (scenario, policy) cell over trials.
type DynamicsRow struct {
	Scenario DynScenario
	Policy   WidthPolicyKind
	// Delivery, Goodput, Collision, AchievedH, OptimalH and Gap summarize
	// the per-trial outcome fields of the same names.
	Delivery  stats.Summary
	Goodput   stats.Summary
	Collision stats.Summary
	AchievedH stats.Summary
	OptimalH  stats.Summary
	Gap       stats.Summary
	// Totals across trials.
	Offered        int64
	TruthDelivered int64
	AFFDelivered   int64
	Churn          mobility.ChurnCounters
	// Series is the trial-averaged achieved-vs-optimal width time series.
	Series []DynPoint
	// Oracle is the conformance report merged over trials in trial order,
	// nil unless the sweep ran with the oracle attached.
	Oracle *oracle.Report
}

// DynamicsResult is the full sweep.
type DynamicsResult struct {
	Config DynamicsConfig
	Rows   []DynamicsRow
}

// Dynamics runs the sweep: scenario x policy x trials.
func Dynamics(cfg DynamicsConfig) (DynamicsResult, error) {
	if err := cfg.Validate(); err != nil {
		return DynamicsResult{}, err
	}
	src := xrand.NewSource(cfg.Seed).Child("dynamics")
	type job struct {
		scenario DynScenario
		policy   WidthPolicyKind
		src      *xrand.Source
	}
	var jobs []job
	for _, scenario := range cfg.Scenarios {
		for _, policy := range cfg.Policies {
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{scenario, policy,
					src.Child(string(scenario), string(policy), fmt.Sprint(trial))})
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (DynamicsOutcome, error) {
		return RunDynamicsTrial(cfg, jobs[i].scenario, jobs[i].policy, jobs[i].src)
	})
	if err != nil {
		return DynamicsResult{}, err
	}
	wrapped := make([]TrialOutcome, len(outs))
	for i := range outs {
		wrapped[i].Obs = outs[i].Obs
	}
	if err := foldTrialObs(cfg.Obs, wrapped, func(i int) string {
		return fmt.Sprintf("dynamics %s", dynamicsLabel(jobs[i].scenario, jobs[i].policy))
	}); err != nil {
		return DynamicsResult{}, err
	}

	res := DynamicsResult{Config: cfg}
	type accs struct {
		row                          DynamicsRow
		del, good, coll, ach, op, gp stats.Accumulator
		sumAch, sumOpt, sumAwake     []float64
		trials                       int
	}
	byRow := make(map[string]*accs)
	var order []string
	for i, out := range outs {
		j := jobs[i]
		k := dynamicsLabel(j.scenario, j.policy)
		a, ok := byRow[k]
		if !ok {
			a = &accs{row: DynamicsRow{Scenario: j.scenario, Policy: j.policy}}
			byRow[k] = a
			order = append(order, k)
		}
		a.del.Add(out.DeliveryRatio())
		a.good.Add(out.Goodput)
		a.coll.Add(out.CollisionRate)
		a.ach.Add(out.MeanAchievedH)
		a.op.Add(out.MeanOptimalH)
		a.gp.Add(out.HGap)
		a.row.Offered += out.Offered
		a.row.TruthDelivered += out.TruthDelivered
		a.row.AFFDelivered += out.AFFDelivered
		a.row.Churn.Joins += out.Churn.Joins
		a.row.Churn.Leaves += out.Churn.Leaves
		a.row.Churn.Sleeps += out.Churn.Sleeps
		a.row.Churn.Wakes += out.Churn.Wakes
		if out.Oracle != nil {
			if a.row.Oracle == nil {
				a.row.Oracle = &oracle.Report{}
			}
			a.row.Oracle.Merge(*out.Oracle)
		}
		// Sampling instants are deterministic, so per-trial series align
		// index by index and average across trials.
		if a.sumAch == nil {
			n := len(out.Samples)
			a.sumAch = make([]float64, n)
			a.sumOpt = make([]float64, n)
			a.sumAwake = make([]float64, n)
			a.row.Series = make([]DynPoint, n)
			for s, p := range out.Samples {
				a.row.Series[s].At = p.At
			}
		}
		for s, p := range out.Samples {
			a.sumAch[s] += p.AchievedH
			a.sumOpt[s] += p.OptimalH
			a.sumAwake[s] += p.Awake
		}
		a.trials++
	}
	for _, k := range order {
		a := byRow[k]
		a.row.Delivery = a.del.Summary()
		a.row.Goodput = a.good.Summary()
		a.row.Collision = a.coll.Summary()
		a.row.AchievedH = a.ach.Summary()
		a.row.OptimalH = a.op.Summary()
		a.row.Gap = a.gp.Summary()
		for s := range a.row.Series {
			n := float64(a.trials)
			a.row.Series[s].AchievedH = a.sumAch[s] / n
			a.row.Series[s].OptimalH = a.sumOpt[s] / n
			a.row.Series[s].Awake = a.sumAwake[s] / n
		}
		res.Rows = append(res.Rows, a.row)
	}
	return res, nil
}

func dynamicsLabel(s DynScenario, p WidthPolicyKind) string {
	return fmt.Sprintf("scenario=%s,policy=%s", s, p)
}

// RunDynamicsTrial executes one trial of one (scenario, policy) cell:
// cfg.Senders continuous streamers on a unit disk around a central sink,
// moved or churned by the scenario, measured against the sink's
// ground-truth reassembler and an omniscient Equation 4 probe.
func RunDynamicsTrial(cfg DynamicsConfig, scenario DynScenario, policy WidthPolicyKind, src *xrand.Source) (DynamicsOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	disk := radio.NewUnitDisk(cfg.Range)
	med := radio.NewMedium(eng, disk, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}

	// The fixed arm runs today's wire format bit for bit; the adaptive arm
	// opens the MaxBits pool and carries each transaction's width in-band.
	affCfg := aff.Config{
		Space:             core.MustSpace(cfg.FixedBits),
		MTU:               params.MTU,
		Instrument:        true,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
	}
	if policy.adaptive() {
		affCfg.Space = core.MustSpace(cfg.MaxBits)
		affCfg.AdaptiveWidth = true
	}
	sp := newTrialSpan(cfg.Obs, trialObs, affCfg, eng.Now)
	if sp != nil {
		med.SetFateObserver(sp)
	}

	// The oracle watches the medium with the simulator's privileged eyes;
	// it is strictly passive, so attaching it cannot change the run.
	var orc *oracle.Oracle
	if cfg.Oracle {
		var err error
		orc, err = oracle.New(oracle.Config{AFF: affCfg, Topo: disk, Now: eng.Now})
		if err != nil {
			return DynamicsOutcome{}, err
		}
		med.SetFrameObserver(orc)
	}
	audit := func(id radio.NodeID) func(aff.Packet) {
		if orc == nil {
			return nil
		}
		return func(p aff.Packet) { orc.VerifyDelivered(id, p) }
	}

	const sinkID radio.NodeID = 0
	disk.Place(sinkID, radio.Point{X: cfg.Area.W / 2, Y: cfg.Area.H / 2})
	rxRadio := med.MustAttach(sinkID)
	truth := aff.NewTruthReassembler(affCfg, eng.Now)
	rxEst := density.NewPolicy(policy.estimatorPolicy(), 0, 0, eng.Now)
	rxSel, err := makeSelector(SelListening, affCfg.Space, src.Stream("rx-sel"), rxEst.Window)
	if err != nil {
		return DynamicsOutcome{}, err
	}
	rxOpts := node.AFFOptions{
		Estimator: rxEst,
		Truth:     truth,
		Engine:    eng,
		OnDeliver: audit(sinkID),
	}
	if sp != nil {
		rxOpts.Span = sp
	}
	rx, err := node.NewAFF(rxRadio, affCfg, rxSel, rxOpts)
	if err != nil {
		return DynamicsOutcome{}, err
	}

	var churner *mobility.Churner
	if scenario == DynChurn || scenario == DynScript {
		churner = mobility.NewChurner(eng, cfg.Duration)
		churner.SetDisk(disk)
		churner.SetTracer(tracer)
	}

	dataBits := 8 * cfg.PacketSize
	ctls := make(map[radio.NodeID]*adapt.Controller)
	ests := make(map[radio.NodeID]density.TEstimator)
	radios := []*radio.Radio{rxRadio}
	var gens []*workload.Continuous
	var groupMembers []radio.NodeID
	for i := 1; i <= cfg.Senders; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		if scenario != DynWaypoint && scenario != DynGroup {
			// Waypoint walkers and group members place themselves;
			// everyone else scatters uniformly up front.
			pos := src.Stream("pos", label)
			disk.Place(id, radio.Point{X: pos.Float64() * cfg.Area.W, Y: pos.Float64() * cfg.Area.H})
		}
		txRadio := med.MustAttach(id)
		radios = append(radios, txRadio)
		est := density.NewPolicy(policy.estimatorPolicy(), 0, 0, eng.Now)
		ests[id] = est
		sel, err := makeSelector(SelListening, affCfg.Space, src.Stream("sel", label), est.Window)
		if err != nil {
			return DynamicsOutcome{}, err
		}
		opts := node.AFFOptions{Estimator: est, ObserveOwn: true, Engine: eng, OnDeliver: audit(id)}
		if sp != nil {
			opts.Span = sp
		}
		if policy.adaptive() {
			actlCfg := adapt.Config{DataBits: dataBits, Min: cfg.MinBits, Max: cfg.MaxBits}
			if sp != nil {
				nid := id
				actlCfg.OnChange = func(from, to int) { sp.NoteWidthChange(nid, from, to) }
			}
			ctl, err := adapt.New(actlCfg, est)
			if err != nil {
				return DynamicsOutcome{}, err
			}
			ctls[id] = ctl
			opts.Width = ctl
		}
		d, err := node.NewAFF(txRadio, affCfg, sel, opts)
		if err != nil {
			return DynamicsOutcome{}, err
		}
		gen := workload.NewContinuousMixed(eng, d, []int{cfg.PacketSize}, 0, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		gens = append(gens, gen)

		switch scenario {
		case DynGroup:
			groupMembers = append(groupMembers, id)
		case DynWaypoint:
			wcfg := mobility.WaypointConfig{
				Area:     cfg.Area,
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				Pause:    cfg.Pause,
			}
			if _, err := mobility.StartWaypoint(eng, disk, id, wcfg, src.Stream("mob", label), cfg.Duration); err != nil {
				return DynamicsOutcome{}, err
			}
		case DynChurn:
			churner.Register(id, d)
			if err := churner.StartDutyCycle(id, cfg.Duty, src.Stream("duty", label)); err != nil {
				return DynamicsOutcome{}, err
			}
		case DynScript:
			churner.Register(id, d)
		}
	}
	if scenario == DynScript {
		dir := mobility.NewDirector(eng, disk, churner, 0, cfg.Duration)
		if err := dir.Apply(*cfg.Script); err != nil {
			return DynamicsOutcome{}, err
		}
	}
	if scenario == DynGroup {
		// Two clusters roaming independently: the halves partition from
		// each other (and from the sink) and merge back as their reference
		// points cross — correlated membership change, unlike waypoint's
		// independent walkers.
		gcfg := mobility.GroupConfig{
			Waypoint: mobility.WaypointConfig{
				Area:     cfg.Area,
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				Pause:    cfg.Pause,
			},
			Spread: cfg.GroupSpread,
		}
		half := (len(groupMembers) + 1) / 2
		for gi, members := range [][]radio.NodeID{groupMembers[:half], groupMembers[half:]} {
			if len(members) == 0 {
				continue
			}
			if _, err := mobility.StartGroup(eng, disk, members, gcfg, src.Stream("group", fmt.Sprint(gi)), cfg.Duration); err != nil {
				return DynamicsOutcome{}, err
			}
		}
	}

	// The omniscient probe: at each sample instant, every awake placed
	// sender's true density is itself plus its awake sender neighbors
	// (continuous workloads keep one transaction in flight per sender),
	// and its Equation 4 optimum is clamped exactly as the controller's
	// target is, so the gap measures tracking, not clamping.
	awake := func(id radio.NodeID) bool {
		return churner == nil || churner.Awake(id)
	}
	widthOf := func(id radio.NodeID) int {
		if ctl, ok := ctls[id]; ok {
			return ctl.Current()
		}
		return cfg.FixedBits
	}
	var samples []DynPoint
	var sumAch, sumOpt, sumGap float64
	var steady int
	half := cfg.Duration / 2
	for at := cfg.SampleInterval; at <= cfg.Duration; at += cfg.SampleInterval {
		at := at
		eng.ScheduleAt(at, func() {
			var ach, opt float64
			n := 0
			for i := 1; i <= cfg.Senders; i++ {
				id := radio.NodeID(i)
				if !awake(id) {
					continue
				}
				if _, placed := disk.Position(id); !placed {
					continue
				}
				t := 1.0
				for _, nb := range disk.Neighbors(id) {
					if nb != sinkID && awake(nb) {
						t++
					}
				}
				h, _ := model.OptimalBits(dataBits, t, cfg.MaxBits)
				if h < cfg.MinBits {
					h = cfg.MinBits
				}
				w := widthOf(id)
				ach += float64(w)
				opt += float64(h)
				n++
				if at > half {
					sumAch += float64(w)
					sumOpt += float64(h)
					sumGap += math.Abs(float64(w - h))
					steady++
					if orc != nil {
						// Score estimator and controller against the
						// oracle's transaction-level ground truth (the
						// probe's own t above is the neighbor-count
						// approximation of the same quantity).
						orc.Probe(id, ests[id].Estimate(), w, dataBits, cfg.MinBits, cfg.MaxBits)
					}
				}
			}
			p := DynPoint{At: at}
			if n > 0 {
				p.AchievedH = ach / float64(n)
				p.OptimalH = opt / float64(n)
				p.Awake = float64(n)
			}
			samples = append(samples, p)
		})
	}

	if cfg.ShardWindow > 0 {
		shard.DrainAdopted(eng, cfg.ShardWindow)
	} else {
		eng.Run()
	}

	out := DynamicsOutcome{
		TruthDelivered: truth.Stats().Delivered,
		AFFDelivered:   rx.Reassembler().Stats().Delivered,
		DeliveredBits:  rx.Reassembler().Stats().DeliveredBits,
		Samples:        samples,
	}
	for _, g := range gens {
		out.Offered += g.Stats().PacketsOffered
	}
	for _, r := range radios {
		out.TxBits += r.Meter().TxBits
	}
	if out.TruthDelivered > 0 {
		lost := out.TruthDelivered - out.AFFDelivered
		if lost < 0 {
			lost = 0
		}
		out.CollisionRate = float64(lost) / float64(out.TruthDelivered)
	}
	if out.TxBits > 0 {
		out.Goodput = float64(out.DeliveredBits) / float64(out.TxBits)
	}
	if steady > 0 {
		out.MeanAchievedH = sumAch / float64(steady)
		out.MeanOptimalH = sumOpt / float64(steady)
		out.HGap = sumGap / float64(steady)
	}
	if churner != nil {
		out.Churn = churner.Counters()
	}
	if orc != nil {
		rep := orc.Report()
		out.Oracle = &rep
	}

	if trialObs != nil && trialObs.Metrics != nil {
		label := dynamicsLabel(scenario, policy)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectDynamics(trialObs.Metrics, label, out)
		if snap, ok := rxEst.(density.Snapshotter); ok {
			snap.SnapshotInto(trialObs.Metrics, label)
		}
		if out.Oracle != nil {
			out.Oracle.SnapshotInto(trialObs.Metrics, label)
		}
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// collectDynamics records one trial's dynamics counters and the steady-
// state width gauges (gauges merge by max, so the snapshot carries the
// worst trial per cell).
func collectDynamics(reg *metrics.Registry, label string, out DynamicsOutcome) {
	reg.Counter("dyn_offered_total", label).Add(out.Offered)
	reg.Counter("dyn_truth_delivered_total", label).Add(out.TruthDelivered)
	reg.Counter("dyn_aff_delivered_total", label).Add(out.AFFDelivered)
	reg.Counter("dyn_delivered_bits_total", label).Add(out.DeliveredBits)
	reg.Counter("dyn_tx_bits_total", label).Add(out.TxBits)
	reg.Counter("churn_joins_total", label).Add(out.Churn.Joins)
	reg.Counter("churn_leaves_total", label).Add(out.Churn.Leaves)
	reg.Counter("churn_sleeps_total", label).Add(out.Churn.Sleeps)
	reg.Counter("churn_wakes_total", label).Add(out.Churn.Wakes)
	reg.Gauge("dyn_achieved_h_steady", label).SetMax(out.MeanAchievedH)
	reg.Gauge("dyn_optimal_h_steady", label).SetMax(out.MeanOptimalH)
	reg.Gauge("dyn_h_gap_steady", label).SetMax(out.HGap)
}

// Render renders the sweep as a table, one row per cell.
func (res DynamicsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Identifier sizing under dynamics (%d senders, %v x %d trials, %gx%g area, range %g)\n",
		res.Config.Senders, res.Config.Duration, res.Config.Trials,
		res.Config.Area.W, res.Config.Area.H, res.Config.Range)
	fmt.Fprintf(&b, "%-11s %-9s %18s %8s %8s %6s %6s %12s %15s\n",
		"scenario", "policy", "delivery", "goodput", "collide", "achH", "optH", "gap", "churn j/l/s/w")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-11s %-9s %9.4f ± %.4f %8.4f %8.4f %6.2f %6.2f %5.2f ± %.2f %15s\n",
			r.Scenario, r.Policy,
			r.Delivery.Mean, r.Delivery.StdDev,
			r.Goodput.Mean, r.Collision.Mean,
			r.AchievedH.Mean, r.OptimalH.Mean,
			r.Gap.Mean, r.Gap.StdDev,
			fmt.Sprintf("%d/%d/%d/%d", r.Churn.Joins, r.Churn.Leaves, r.Churn.Sleeps, r.Churn.Wakes))
	}
	hasOracle := false
	for _, r := range res.Rows {
		if r.Oracle != nil {
			hasOracle = true
			break
		}
	}
	if hasOracle {
		fmt.Fprintf(&b, "\nOracle conformance (omniscient ground truth; gaps in bits vs Eq. 4 optimum)\n")
		fmt.Fprintf(&b, "%-11s %-17s %8s %8s %8s %8s %9s %8s %12s\n",
			"scenario", "policy", "estP50", "estP95", "|gap|", "gapP95", "audited", "collide", "violations")
		for _, r := range res.Rows {
			o := r.Oracle
			if o == nil {
				continue
			}
			fmt.Fprintf(&b, "%-11s %-17s %8.2f %8.2f %8.2f %8.2f %9d %8d %12s\n",
				r.Scenario, r.Policy,
				o.EstErrorPercentile(50), o.EstErrorPercentile(95),
				o.MeanAbsWidthGap(), o.WidthGapPercentile(95),
				o.PacketsAudited, o.CollisionEvents,
				fmt.Sprintf("%d/%d/%d", o.ConservationViolations, o.Misdeliveries, o.FreshnessViolations))
		}
	}
	return b.String()
}

// CSV renders the sweep for plotting. Summary records (kind=summary) carry
// one row per cell; time-series records (kind=h_t) carry the trial-
// averaged achieved-vs-optimal width at each sample instant.
func (res DynamicsResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"kind", "scenario", "policy", "t_seconds",
		"delivery", "delivery_stddev", "goodput", "collision_rate",
		"achieved_h", "optimal_h", "h_gap", "h_gap_stddev", "awake",
		"offered", "truth_delivered", "aff_delivered",
		"joins", "leaves", "sleeps", "wakes", "trials"})
	for _, r := range res.Rows {
		_ = w.Write([]string{"summary", string(r.Scenario), string(r.Policy), "",
			formatFloat(r.Delivery.Mean), formatFloat(r.Delivery.StdDev),
			formatFloat(r.Goodput.Mean), formatFloat(r.Collision.Mean),
			formatFloat(r.AchievedH.Mean), formatFloat(r.OptimalH.Mean),
			formatFloat(r.Gap.Mean), formatFloat(r.Gap.StdDev), "",
			strconv.FormatInt(r.Offered, 10), strconv.FormatInt(r.TruthDelivered, 10),
			strconv.FormatInt(r.AFFDelivered, 10),
			strconv.FormatInt(r.Churn.Joins, 10), strconv.FormatInt(r.Churn.Leaves, 10),
			strconv.FormatInt(r.Churn.Sleeps, 10), strconv.FormatInt(r.Churn.Wakes, 10),
			strconv.Itoa(r.Delivery.N),
		})
	}
	for _, r := range res.Rows {
		for _, p := range r.Series {
			_ = w.Write([]string{"h_t", string(r.Scenario), string(r.Policy),
				formatFloat(p.At.Seconds()), "", "", "", "",
				formatFloat(p.AchievedH), formatFloat(p.OptimalH), "", "",
				formatFloat(p.Awake), "", "", "", "", "", "", "", "",
			})
		}
	}
	w.Flush()
	return sb.String()
}
