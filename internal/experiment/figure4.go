package experiment

import (
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/model"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// EstimatorKind names a transaction-density estimator.
type EstimatorKind string

// Density estimators under test.
const (
	// EstEMA samples active-identifier counts at fragment arrivals and
	// smooths them exponentially.
	EstEMA EstimatorKind = "ema"
	// EstInterval time-averages concurrency over a sliding window,
	// matching the model's definition of T (Section 4.1); it is the
	// "more accurate ways of estimating T" refinement Section 8 asks for.
	EstInterval EstimatorKind = "interval"
)

// SelectorKind names an identifier-selection algorithm for experiments.
type SelectorKind string

// Selector kinds under test.
const (
	// SelUniform is the analysed worst case: uniform random selection.
	SelUniform SelectorKind = "uniform"
	// SelListening avoids recently heard identifiers with the adaptive
	// 2T window.
	SelListening SelectorKind = "listening"
	// SelListeningNotify is listening plus the receiver collision
	// notification extension.
	SelListeningNotify SelectorKind = "listening+notify"
	// SelSequential is the deterministic ablation control.
	SelSequential SelectorKind = "sequential"
)

// Figure4Config parameterizes the Section 5.1 validation experiment.
type Figure4Config struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Transmitters stream packets at one receiver (paper: 5).
	Transmitters int
	// PacketSize is the application packet in bytes (paper: 80).
	PacketSize int
	// PacketSizes, when non-empty, overrides PacketSize with a uniform
	// mix (the non-uniform transaction-length ablation).
	PacketSizes []int
	// Interval, when positive, replaces the continuous stream with a
	// periodic sender (one packet per Interval ± Interval/2 jitter).
	// Needed for scenarios where continuous hidden senders would destroy
	// every frame at the RF level before identifiers matter.
	Interval time.Duration
	// FixedWindow, when positive, pins the listening window to that many
	// transactions instead of the adaptive 2T rule (the listening-window
	// ablation).
	FixedWindow int
	// Estimator selects the density estimator driving adaptive windows:
	// EstEMA (default) or EstInterval (the Section 8 refinement).
	Estimator EstimatorKind
	// Duration is simulated time per trial (paper: 2 minutes).
	Duration time.Duration
	// Trials per identifier size (paper: 10).
	Trials int
	// IDBits is the identifier sizes swept.
	IDBits []int
	// Selectors are the algorithms compared (paper: uniform, listening).
	Selectors []SelectorKind
	// Topology overrides the full mesh when non-nil (hidden-terminal
	// ablation); it is invoked with the transmitter count and the
	// receiver's node ID (transmitters are IDs 1..n).
	Topology func(transmitters int, receiver radio.NodeID) radio.Topology
	// Params overrides the radio parameters when non-zero.
	Params *radio.Params
	// Parallelism is the number of trials simulated concurrently; 0 or 1
	// runs them sequentially. Each trial owns its engine and random
	// streams and results merge by trial index, so output is identical at
	// any setting (DESIGN.md, "Parallelism").
	Parallelism int
	// Obs, when non-nil, opts the run into observability: per-trial
	// metrics and trace capture folded deterministically after the run
	// (see Obs). Results are byte-identical with or without it.
	Obs *Obs
	// Hooks carries progress and timing callbacks to the runner.
	Hooks RunHooks
	// ReassemblyTimeout bounds how long partial-packet state lives. It
	// approximates the model's interference window: Equation 4 counts
	// only transactions that *overlap*, so state left by a finished or
	// failed transaction must not linger much past the transaction's own
	// duration or identifier reuse is penalized beyond what the model
	// describes. The default (250ms) is a little under one 80-byte
	// transaction's duration under five-way contention; measured uniform
	// collision rates then track Equation 4 closely.
	ReassemblyTimeout time.Duration
}

// DefaultFigure4Config reproduces the paper's setup. The identifier sweep
// covers 2..10 bits: with T=5, one bit collides almost always and beyond
// 10 bits collisions are too rare to measure in two simulated minutes.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Seed:              1,
		Transmitters:      5,
		PacketSize:        80,
		Duration:          2 * time.Minute,
		Trials:            10,
		IDBits:            []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		Selectors:         []SelectorKind{SelUniform, SelListening},
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

// Figure4Result carries measured collision-rate series plus the model
// prediction.
type Figure4Result struct {
	Config Figure4Config
	// Measured maps selector kind to a series of collision rate vs
	// identifier bits, with per-point mean and stddev over trials (the
	// paper's error bars).
	Measured map[SelectorKind]*stats.Series
	// Model is Equation 4's predicted collision rate at T=Transmitters.
	Model []model.Point
	// TruthDelivered and AFFDelivered total the packet counts across all
	// trials, for sanity checks.
	TruthDelivered int64
	AFFDelivered   int64
}

// TrialOutcome reports one trial's counts.
type TrialOutcome struct {
	TruthDelivered int64
	AFFDelivered   int64
	// CollisionRate is 1 - AFF/Truth (0 when nothing was delivered).
	CollisionRate float64
	// EstimatedT is the receiver-side density estimate at the end of the
	// trial.
	EstimatedT float64
	// Obs is the trial's private observability capture, nil unless the
	// config's Obs requested one.
	Obs *TrialObs
}

// Figure4 runs the full sweep.
func Figure4(cfg Figure4Config) (Figure4Result, error) {
	if cfg.Transmitters < 1 || cfg.Trials < 1 || len(cfg.IDBits) == 0 {
		return Figure4Result{}, fmt.Errorf("experiment: degenerate figure-4 config %+v", cfg)
	}
	res := Figure4Result{
		Config:   cfg,
		Measured: make(map[SelectorKind]*stats.Series, len(cfg.Selectors)),
	}
	// Flatten the selector x bits x trial nest into an indexed job list,
	// fan the independent trials out, then fold the outcomes back in the
	// exact order the sequential loop used.
	src := xrand.NewSource(cfg.Seed).Child("figure4")
	type job struct {
		sel  SelectorKind
		bits int
		src  *xrand.Source
	}
	jobs := make([]job, 0, len(cfg.Selectors)*len(cfg.IDBits)*cfg.Trials)
	for _, sel := range cfg.Selectors {
		for _, bits := range cfg.IDBits {
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{sel, bits, src.Child(string(sel), fmt.Sprint(bits), fmt.Sprint(trial))})
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (TrialOutcome, error) {
		return RunCollisionTrial(cfg, jobs[i].sel, jobs[i].bits, jobs[i].src)
	})
	if err != nil {
		return Figure4Result{}, err
	}
	if err := foldTrialObs(cfg.Obs, outs, func(i int) string {
		return fmt.Sprintf("figure4 sel=%s bits=%d", jobs[i].sel, jobs[i].bits)
	}); err != nil {
		return Figure4Result{}, err
	}
	for i, out := range outs {
		series, ok := res.Measured[jobs[i].sel]
		if !ok {
			series = stats.NewSeries(string(jobs[i].sel))
			res.Measured[jobs[i].sel] = series
		}
		series.Add(float64(jobs[i].bits), out.CollisionRate)
		res.TruthDelivered += out.TruthDelivered
		res.AFFDelivered += out.AFFDelivered
	}
	for _, bits := range cfg.IDBits {
		res.Model = append(res.Model, model.Point{
			H: bits,
			E: model.CollisionRate(bits, float64(cfg.Transmitters)),
		})
	}
	// Pair the aggregated measurement with the per-trial predicted gauges:
	// the snapshot then carries observed vs predicted side by side.
	if cfg.Obs != nil && cfg.Obs.Metrics != nil {
		for _, sel := range cfg.Selectors {
			series, ok := res.Measured[sel]
			if !ok {
				continue
			}
			for _, p := range series.Points() {
				label := fmt.Sprintf("sel=%s,bits=%d", sel, int(p.X))
				cfg.Obs.Metrics.Gauge("aff_collision_rate_observed", label).Set(p.Y.Mean)
			}
		}
	}
	return res, nil
}

// RunCollisionTrial executes one trial: cfg.Transmitters nodes stream
// random packets at a single receiver for cfg.Duration; the receiver runs
// the AFF reassembler under test beside the ground-truth reassembler and
// the collision rate is the fraction of truth-delivered packets the AFF
// identifier alone failed to deliver (Section 5.1).
func RunCollisionTrial(cfg Figure4Config, selKind SelectorKind, idBits int, src *xrand.Source) (TrialOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}

	const receiverID radio.NodeID = 0
	var topo radio.Topology = radio.FullMesh{}
	if cfg.Topology != nil {
		topo = cfg.Topology(cfg.Transmitters, receiverID)
	}
	med := radio.NewMedium(eng, topo, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}

	affCfg := aff.Config{
		Space:             core.MustSpace(idBits),
		MTU:               params.MTU,
		Instrument:        true,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
	}

	// Receiver: reassembler under test + ground truth side channel.
	rxRadio := med.MustAttach(receiverID)
	truth := aff.NewTruthReassembler(affCfg, eng.Now)
	rxEst := makeEstimator(cfg.Estimator, eng)
	rxSel, err := makeSelector(selKind, affCfg.Space, src.Stream("rx-sel"), windowOf(cfg, rxEst))
	if err != nil {
		return TrialOutcome{}, err
	}
	rx, err := node.NewAFF(rxRadio, affCfg, rxSel, node.AFFOptions{
		Estimator:        rxEst,
		Truth:            truth,
		NotifyCollisions: selKind == SelListeningNotify,
	})
	if err != nil {
		return TrialOutcome{}, err
	}

	// Transmitters: continuous streamers. In listening mode each
	// transmitter "also acts as a receiver, listening to packets
	// transmitted by other nodes" — our radios listen by default and the
	// driver's reassembler tap feeds the selector.
	radios := []*radio.Radio{rxRadio}
	for i := 1; i <= cfg.Transmitters; i++ {
		label := fmt.Sprint(i)
		txRadio := med.MustAttach(radio.NodeID(i))
		radios = append(radios, txRadio)
		est := makeEstimator(cfg.Estimator, eng)
		sel, err := makeSelector(selKind, affCfg.Space, src.Stream("sel", label), windowOf(cfg, est))
		if err != nil {
			return TrialOutcome{}, err
		}
		d, err := node.NewAFF(txRadio, affCfg, sel, node.AFFOptions{
			Estimator:        est,
			ObserveOwn:       selKind == SelListening || selKind == SelListeningNotify,
			NotifyCollisions: selKind == SelListeningNotify,
		})
		if err != nil {
			return TrialOutcome{}, err
		}
		if cfg.Interval > 0 {
			gen := workload.NewPeriodic(eng, d, cfg.PacketSize, cfg.Interval, cfg.Interval/2, src.Stream("wl", label))
			gen.Start(cfg.Duration)
		} else {
			sizes := cfg.PacketSizes
			if len(sizes) == 0 {
				sizes = []int{cfg.PacketSize}
			}
			gen := workload.NewContinuousMixed(eng, d, sizes, 0, src.Stream("wl", label))
			gen.Start(cfg.Duration)
		}
	}

	eng.Run()

	out := TrialOutcome{
		TruthDelivered: truth.Stats().Delivered,
		AFFDelivered:   rx.Reassembler().Stats().Delivered,
		EstimatedT:     rxEst.Estimate(),
	}
	if out.TruthDelivered > 0 {
		lost := out.TruthDelivered - out.AFFDelivered
		if lost < 0 {
			lost = 0
		}
		out.CollisionRate = float64(lost) / float64(out.TruthDelivered)
	}
	if trialObs != nil && trialObs.Metrics != nil {
		collectEngine(trialObs.Metrics, eng.Stats())
		collectAFF(trialObs.Metrics, fmt.Sprintf("sel=%s,bits=%d", selKind, idBits),
			rx.Reassembler().Stats(), truth.Stats(),
			model.CollisionRate(idBits, float64(cfg.Transmitters)))
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// makeEstimator builds the configured density estimator on the engine's
// clock.
func makeEstimator(kind EstimatorKind, eng *sim.Engine) density.TEstimator {
	if kind == EstInterval {
		return density.NewInterval(0, 0, eng.Now)
	}
	return density.New(0, 0, eng.Now)
}

// windowOf picks the listening-window rule for a node: the config's fixed
// override, or the estimator's adaptive 2T.
func windowOf(cfg Figure4Config, est density.TEstimator) core.WindowFunc {
	if cfg.FixedWindow > 0 {
		return core.FixedWindow(cfg.FixedWindow)
	}
	return est.Window
}

// makeSelector builds the selector for one node. Listening variants use
// the supplied window rule (adaptive 2T by default).
func makeSelector(kind SelectorKind, space core.Space, rng *rand.Rand, window core.WindowFunc) (core.Selector, error) {
	switch kind {
	case SelUniform:
		return core.NewUniformSelector(space, rng), nil
	case SelListening, SelListeningNotify:
		return core.NewListeningSelector(space, rng, window), nil
	case SelSequential:
		return core.NewSequentialSelector(space, rng.Uint64N(space.Size())), nil
	default:
		return nil, fmt.Errorf("experiment: unknown selector kind %q", kind)
	}
}
