package experiment

import (
	"fmt"
	"strings"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/dynaddr"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// ChurnConfig parameterizes the Section 2.3 argument made measurable:
// under node dynamics, a dynamic address-assignment protocol pays control
// overhead and unavailability on every join, while AFF nodes simply start
// talking.
type ChurnConfig struct {
	Seed uint64
	// Nodes is the population of churning senders.
	Nodes int
	// Duration is the simulated observation window.
	Duration time.Duration
	// Lifetime is the mean exponential up-time before a node is replaced
	// by a fresh one needing configuration.
	Lifetime time.Duration
	// DataInterval spaces each node's periodic data packets.
	DataInterval time.Duration
	// PacketSize is the data packet in bytes (small, per the paper's
	// low-data-rate regime).
	PacketSize int
	// AddrBits sizes the dynamic allocator's address space and the AFF
	// pool alike, so the data-plane header cost is comparable.
	AddrBits int
	// Parallelism is the number of trials simulated concurrently in the
	// churn ablation; 0 or 1 runs them sequentially with identical output.
	Parallelism int
	// Hooks carries progress and timing callbacks to the runner.
	Hooks RunHooks
}

// DefaultChurnConfig returns a sensible churn scenario.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Seed:         1,
		Nodes:        8,
		Duration:     5 * time.Minute,
		Lifetime:     time.Minute,
		DataInterval: 2 * time.Second,
		PacketSize:   4,
		AddrBits:     10,
	}
}

// ChurnOutcome reports one scheme's performance under churn.
type ChurnOutcome struct {
	Scheme string
	// UsefulBits is data delivered at the always-up sink.
	UsefulBits int64
	// OnAirBits is all bits transmitted network-wide (incl. MAC framing).
	OnAirBits int64
	// ControlBits is allocation-protocol traffic (zero for AFF).
	ControlBits int64
	// SendFailures counts data packets refused because the node had no
	// address yet (zero for AFF).
	SendFailures int64
	// PacketsDelivered counts sink deliveries.
	PacketsDelivered int64
	// Rejoins counts node replacements that occurred.
	Rejoins int64
}

// E is measured Equation 1 efficiency.
func (o ChurnOutcome) E() float64 {
	if o.OnAirBits == 0 {
		return 0
	}
	return float64(o.UsefulBits) / float64(o.OnAirBits)
}

// RunChurnTrial measures one scheme ("dynaddr" or "aff") under churn.
func RunChurnTrial(cfg ChurnConfig, scheme string, src *xrand.Source) (ChurnOutcome, error) {
	if scheme != "dynaddr" && scheme != "aff" {
		return ChurnOutcome{}, fmt.Errorf("experiment: unknown churn scheme %q", scheme)
	}
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	med := radio.NewMedium(eng, radio.FullMesh{}, params, src.Stream("medium"))
	out := ChurnOutcome{Scheme: scheme}

	affSpace := core.MustSpace(cfg.AddrBits)
	affCfg := aff.Config{Space: affSpace, MTU: params.MTU, ReassemblyTimeout: time.Second}
	dynCfg := dynaddr.Config{AddrBits: cfg.AddrBits}

	// Always-up sink.
	const sinkID radio.NodeID = 0
	sinkRadio := med.MustAttach(sinkID)
	var sinkDelivered func() (bits, packets int64)
	switch scheme {
	case "aff":
		sel := core.NewUniformSelector(affSpace, src.Stream("sink-sel"))
		d, err := node.NewAFF(sinkRadio, affCfg, sel, node.AFFOptions{})
		if err != nil {
			return ChurnOutcome{}, err
		}
		sinkDelivered = func() (int64, int64) {
			st := d.Reassembler().Stats()
			return st.DeliveredBits, st.Delivered
		}
	case "dynaddr":
		n, err := dynaddr.NewNode(eng, sinkRadio, dynCfg, src.Stream("sink-rng"))
		if err != nil {
			return ChurnOutcome{}, err
		}
		n.Start()
		sinkDelivered = func() (int64, int64) {
			st := n.Reassembler().Stats()
			return st.DeliveredBits, st.Delivered
		}
	}

	// Churning senders: each slot holds one live incarnation at a time;
	// on death a fresh incarnation joins immediately.
	type slot struct {
		r    *radio.Radio
		gen  *workload.Periodic
		dyn  *dynaddr.Node
		incs int
	}
	slots := make([]*slot, cfg.Nodes)

	var join func(s *slot, slotIdx int)
	join = func(s *slot, slotIdx int) {
		if eng.Now() >= cfg.Duration {
			return
		}
		label := fmt.Sprintf("%d-%d", slotIdx, s.incs)
		s.incs++
		out.Rejoins++

		var drv workload.Driver
		switch scheme {
		case "aff":
			sel := core.NewUniformSelector(affSpace, src.Stream("sel", label))
			d, err := node.NewAFF(s.r, affCfg, sel, node.AFFOptions{})
			if err != nil {
				return
			}
			drv = d
		case "dynaddr":
			n, err := dynaddr.NewNode(eng, s.r, dynCfg, src.Stream("rng", label))
			if err != nil {
				return
			}
			n.Start()
			s.dyn = n
			drv = n
		}
		gen := workload.NewPeriodic(eng, drv, cfg.PacketSize, cfg.DataInterval, cfg.DataInterval/4, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		s.gen = gen

		// Schedule this incarnation's death and replacement.
		life := time.Duration(src.Stream("life", label).ExpFloat64() * float64(cfg.Lifetime))
		eng.Schedule(life, func() {
			gen.Stop()
			out.SendFailures += gen.Stats().SendErrors
			if s.dyn != nil {
				s.dyn.Allocator().Release()
				out.ControlBits += s.dyn.Allocator().Stats().ControlBits
				s.dyn = nil
			}
			join(s, slotIdx)
		})
	}

	for i := 0; i < cfg.Nodes; i++ {
		s := &slot{r: med.MustAttach(radio.NodeID(i + 1))}
		slots[i] = s
		join(s, i)
	}
	// The first joins count as initial configuration, not churn.
	out.Rejoins -= int64(cfg.Nodes)

	eng.RunUntil(cfg.Duration)

	// Collect remaining accounting from live incarnations.
	for _, s := range slots {
		if s.gen != nil {
			out.SendFailures += s.gen.Stats().SendErrors
		}
		if s.dyn != nil {
			out.ControlBits += s.dyn.Allocator().Stats().ControlBits
		}
		out.OnAirBits += s.r.Meter().TxBits
	}
	out.OnAirBits += sinkRadio.Meter().TxBits
	out.UsefulBits, out.PacketsDelivered = sinkDelivered()
	return out, nil
}

// ChurnAblationResult sweeps mean lifetime for both schemes.
type ChurnAblationResult struct {
	Config    ChurnConfig
	Lifetimes []time.Duration
	// Outcomes[scheme][i] corresponds to Lifetimes[i].
	Outcomes map[string][]ChurnOutcome
}

// AblationDynAddrChurn compares AFF with dynamic address allocation across
// node lifetimes: the shorter the lifetime, the more the allocator's
// control traffic and configuration latency cost.
func AblationDynAddrChurn(cfg ChurnConfig, lifetimes []time.Duration) (ChurnAblationResult, error) {
	res := ChurnAblationResult{
		Config:    cfg,
		Lifetimes: lifetimes,
		Outcomes:  map[string][]ChurnOutcome{"aff": nil, "dynaddr": nil},
	}
	src := xrand.NewSource(cfg.Seed).Child("ablation-churn")
	type job struct {
		cfg    ChurnConfig
		scheme string
		src    *xrand.Source
	}
	jobs := make([]job, 0, 2*len(lifetimes))
	for _, life := range lifetimes {
		run := cfg
		run.Lifetime = life
		for _, scheme := range []string{"aff", "dynaddr"} {
			jobs = append(jobs, job{run, scheme, src.Child(scheme, life.String())})
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (ChurnOutcome, error) {
		return RunChurnTrial(jobs[i].cfg, jobs[i].scheme, jobs[i].src)
	})
	if err != nil {
		return ChurnAblationResult{}, err
	}
	for i, out := range outs {
		res.Outcomes[jobs[i].scheme] = append(res.Outcomes[jobs[i].scheme], out)
	}
	return res, nil
}

// Render renders the churn ablation as a table.
func (r ChurnAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic-allocation churn ablation (%d nodes, %v, %dB packets every %v)\n",
		r.Config.Nodes, r.Config.Duration, r.Config.PacketSize, r.Config.DataInterval)
	fmt.Fprintf(&b, "%10s %12s %12s %14s %14s\n", "lifetime", "AFF E", "dynaddr E", "control bits", "send failures")
	for i, life := range r.Lifetimes {
		affOut := r.Outcomes["aff"][i]
		dynOut := r.Outcomes["dynaddr"][i]
		fmt.Fprintf(&b, "%10v %12.4f %12.4f %14d %14d\n",
			life, affOut.E(), dynOut.E(), dynOut.ControlBits, dynOut.SendFailures)
	}
	return b.String()
}
