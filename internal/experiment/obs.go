package experiment

import (
	"fmt"
	"time"

	"retri/internal/aff"
	"retri/internal/energy"
	"retri/internal/metrics"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/span"
	"retri/internal/trace"
)

// Obs opts an experiment run into observability. The zero config (a nil
// *Obs) is the default everywhere and costs nothing: no tracer is
// installed, no registry is touched, and trials run exactly as before.
//
// Obs itself is read-only shared configuration. Each trial builds its own
// private capture (a TrialObs) and the experiment folds the captures into
// Metrics and Trace in trial-index order after the runner returns — the
// capture-then-merge pattern from the trace package comment — so results
// are identical at any Parallelism and race-free under it.
type Obs struct {
	// Metrics, when non-nil, receives every trial's counters, gauges and
	// histograms via Registry.Merge.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives every trial's radio event stream,
	// replayed in trial order with a Custom "trial-start …" marker before
	// each trial. It is only Recorded into by the folding goroutine.
	Trace trace.Tracer
	// TraceEventCap bounds the events buffered per trial before replay;
	// 0 means DefaultTraceEventCap, negative means unbounded.
	TraceEventCap int
	// Spans, when non-nil, receives every trial's transaction-lifecycle
	// span trace, folded in trial-index order like everything else.
	Spans *span.Ledger

	// traceDropped accumulates events dropped by per-trial trace buffers
	// across the run (written only by the folding goroutine).
	traceDropped int64
}

// TraceDropped reports how many trace events per-trial buffers dropped
// across every fold so far — zero means the trace outputs are complete.
func (o *Obs) TraceDropped() int64 {
	if o == nil {
		return 0
	}
	return o.traceDropped
}

// DefaultTraceEventCap bounds per-trial trace capture (about 50 MB of
// buffered events per trial at the Event struct's size) unless overridden.
const DefaultTraceEventCap = 1 << 20

// TrialObs is one trial's private observability capture.
type TrialObs struct {
	// Metrics holds the trial's registry (nil unless Obs.Metrics is set).
	Metrics *metrics.Registry
	// Trace holds the trial's buffered events (nil unless Obs.Trace is set).
	Trace *trace.Buffer
	// Spans holds the trial's span tracer (nil unless Obs.Spans is set;
	// installed by the trial via newTrialSpan).
	Spans *span.Tracer
}

// newTrialObs builds a trial's private capture and the tracer to install
// on its radio medium. Both are nil when o is nil or requests nothing.
func newTrialObs(o *Obs) (*TrialObs, trace.Tracer) {
	if o == nil {
		return nil, nil
	}
	t := &TrialObs{}
	var tracers []trace.Tracer
	if o.Metrics != nil {
		t.Metrics = metrics.NewRegistry()
		tracers = append(tracers, metrics.FromTrace(t.Metrics))
	}
	if o.Trace != nil {
		max := o.TraceEventCap
		if max == 0 {
			max = DefaultTraceEventCap
		}
		t.Trace = &trace.Buffer{Max: max}
		tracers = append(tracers, t.Trace)
	}
	switch len(tracers) {
	case 0:
		if o.Spans == nil {
			return nil, nil
		}
		return t, nil
	case 1:
		return t, tracers[0]
	default:
		return t, trace.Multi(tracers...)
	}
}

// newTrialSpan builds a trial's span tracer once the trial knows its
// wire format, parking it in the trial capture for the fold. Returns
// nil (and installs nothing) unless Obs.Spans requested span tracing.
// Callers must keep the nil fast path: never hand a nil *span.Tracer to
// an interface field.
func newTrialSpan(o *Obs, t *TrialObs, affCfg aff.Config, now func() time.Duration) *span.Tracer {
	if o == nil || o.Spans == nil || t == nil {
		return nil
	}
	sp := span.MustNew(span.Config{AFF: affCfg, Now: now})
	t.Spans = sp
	return sp
}

// newTrialSpanRelay is newTrialSpan for multi-hop trials: unwrap strips
// the relay envelope before frames are decoded against the AFF wire
// format, so relayed copies attribute (and dedup) correctly.
func newTrialSpanRelay(o *Obs, t *TrialObs, affCfg aff.Config, now func() time.Duration,
	unwrap func(payload []byte) ([]byte, bool)) *span.Tracer {
	if o == nil || o.Spans == nil || t == nil {
		return nil
	}
	sp := span.MustNew(span.Config{AFF: affCfg, Now: now, Unwrap: unwrap})
	t.Spans = sp
	return sp
}

// heapBuckets histograms event-loop sizes across trials; trials range
// from a few thousand events (quick ablations) to tens of millions
// (full-length continuous workloads).
var heapBuckets = []float64{64, 256, 1024, 4096, 16384, 65536}

// collectEngine records one trial's event-loop accounting.
func collectEngine(reg *metrics.Registry, st sim.Stats) {
	reg.Counter("sim_events_processed_total", "").Add(int64(st.Processed))
	reg.Counter("sim_events_scheduled_total", "").Add(int64(st.Scheduled))
	reg.Counter("sim_timers_cancelled_total", "").Add(int64(st.Cancelled))
	reg.Counter("sim_heap_compactions_total", "").Add(int64(st.Compactions))
	reg.Gauge("sim_heap_high_water", "").SetMax(float64(st.HeapHighWater))
	reg.Histogram("sim_heap_high_water_per_trial", "", heapBuckets).Observe(float64(st.HeapHighWater))
}

// collectAFF records one receiver's reassembly outcomes beside the ground
// truth, under a label identifying the configuration (e.g.
// "sel=uniform,bits=4"). The observed identifier-collision count is the
// packets the truth reassembler delivered that the AFF identifier alone
// lost; predicted is the model's Equation 4 rate for the same setup, kept
// adjacent so a snapshot carries the observed-vs-predicted pair.
func collectAFF(reg *metrics.Registry, label string, affSt, truthSt aff.Stats, predicted float64) {
	reg.Counter("aff_fragments_in_total", label).Add(affSt.FragmentsIn)
	reg.Counter("aff_delivered_total", label).Add(affSt.Delivered)
	reg.Counter("aff_delivered_bits_total", label).Add(affSt.DeliveredBits)
	reg.Counter("aff_checksum_failures_total", label).Add(affSt.ChecksumFailures)
	reg.Counter("aff_conflicts_total", label).Add(affSt.Conflicts)
	reg.Counter("aff_timeouts_total", label).Add(affSt.Timeouts)
	reg.Counter("aff_malformed_total", label).Add(affSt.Malformed)
	reg.Counter("aff_truth_delivered_total", label).Add(truthSt.Delivered)
	lost := truthSt.Delivered - affSt.Delivered
	if lost < 0 {
		lost = 0
	}
	reg.Counter("aff_id_collisions_observed_total", label).Add(lost)
	reg.Gauge("aff_collision_rate_predicted", label).Set(predicted)
}

// energyBuckets histograms per-node radio energy in joules. Two simulated
// minutes of continuous transmission under the default model spend a few
// joules; mostly-listening nodes spend well under one.
var energyBuckets = []float64{0.25, 0.5, 1, 1.5, 2, 3, 5, 8, 12, 20, 50}

// collectEnergy records one node's radio energy and transmitted bits.
func collectEnergy(reg *metrics.Registry, id radio.NodeID, m energy.Meter) {
	reg.Histogram("node_energy_joules", "", energyBuckets).Observe(energy.DefaultModel().Joules(m))
	reg.Counter("radio_tx_bits_total", metrics.Node(int(id))).Add(m.TxBits)
}

// foldTrialObs merges per-trial captures into o in trial-index order:
// registries via Merge, trace buffers via Replay behind a Custom
// "trial-start" marker carrying note(i). Sequential and parallel runs of
// the same config therefore produce identical metrics and identical event
// streams. A nil o or trials without captures fold to nothing.
func foldTrialObs(o *Obs, outs []TrialOutcome, note func(i int) string) error {
	if o == nil {
		return nil
	}
	for i, out := range outs {
		if out.Obs == nil {
			continue
		}
		if o.Metrics != nil && out.Obs.Metrics != nil {
			if err := o.Metrics.Merge(out.Obs.Metrics); err != nil {
				return fmt.Errorf("experiment: merging trial %d metrics: %w", i, err)
			}
		}
		if o.Trace != nil && out.Obs.Trace != nil {
			o.Trace.Record(trace.Event{Kind: trace.Custom, Note: "trial-start " + note(i)})
			out.Obs.Trace.Replay(o.Trace)
			if d := out.Obs.Trace.Dropped(); d > 0 {
				o.traceDropped += d
				o.Trace.Record(trace.Event{Kind: trace.Custom,
					Note: fmt.Sprintf("trial-truncated dropped=%d", d)})
			}
		}
		if o.Spans != nil && out.Obs.Spans != nil {
			// The job index disambiguates trials sharing a cell label.
			o.Spans.AddTrial(fmt.Sprintf("%s#%d", note(i), i), out.Obs.Spans)
		}
	}
	return nil
}

// RunHooks carries per-trial progress callbacks through an experiment
// config to the runner. Hooks observe wall-clock reality (completion
// order, elapsed time), so unlike Obs their output is not deterministic;
// they exist for progress display and run manifests, never for results.
type RunHooks struct {
	// OnProgress mirrors runner.Options.OnProgress.
	OnProgress func(completed, total int)
	// OnTrialTime mirrors runner.Options.OnTrialTime.
	OnTrialTime func(trial int, elapsed time.Duration)
}

// runnerOptions assembles the runner options for an experiment's Map call.
func (h RunHooks) runnerOptions(parallelism int) runner.Options {
	return runner.Options{
		Parallelism: parallelism,
		OnProgress:  h.OnProgress,
		OnTrialTime: h.OnTrialTime,
	}
}
