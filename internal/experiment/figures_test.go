package experiment

import (
	"math"
	"strings"
	"testing"

	"retri/internal/model"
)

func TestFigure1Content(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if fig.DataBits != 16 {
		t.Errorf("DataBits = %d, want 16", fig.DataBits)
	}
	if len(fig.AFF) != 3 {
		t.Fatalf("AFF curves = %d, want 3", len(fig.AFF))
	}
	if len(fig.Static) != 2 {
		t.Fatalf("static lines = %d, want 2", len(fig.Static))
	}
	// The paper's headline: optimum at 9 bits for T=16.
	if opt := fig.Optima[16]; opt.H != 9 {
		t.Errorf("optimum for T=16 = %d bits, want 9", opt.H)
	}
	// Static lines at their documented heights.
	if e := fig.Static[0].Points[0].E; math.Abs(e-0.5) > 1e-12 {
		t.Errorf("16-bit static line = %v, want 0.5", e)
	}
	if e := fig.Static[1].Points[0].E; math.Abs(e-1.0/3.0) > 1e-12 {
		t.Errorf("32-bit static line = %v, want 1/3", e)
	}
	// Every curve spans the full sweep.
	for _, c := range append(fig.AFF, fig.Static...) {
		if len(c.Points) != 32 {
			t.Errorf("curve %q has %d points, want 32", c.Label, len(c.Points))
		}
	}
}

func TestFigure2Content(t *testing.T) {
	fig1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if fig2.DataBits != 128 {
		t.Errorf("DataBits = %d, want 128", fig2.DataBits)
	}
	for _, tt := range Figure1Densities {
		if fig2.Optima[tt].H <= fig1.Optima[tt].H {
			t.Errorf("T=%v: 128-bit optimum (%d) should exceed 16-bit optimum (%d)",
				tt, fig2.Optima[tt].H, fig1.Optima[tt].H)
		}
	}
}

func TestEfficiencyCurvesValidation(t *testing.T) {
	if _, err := EfficiencyCurves(16, []float64{4}, nil, 5, 2); err == nil {
		t.Error("inverted H range accepted")
	}
}

func TestFigure3Content(t *testing.T) {
	fig := Figure3()
	if len(fig.Loads) != 19 || fig.Loads[0] != 1 || fig.Loads[18] != 1<<18 {
		t.Fatalf("loads = %v", fig.Loads)
	}
	// Static defined through 2^16, undefined past it.
	for i, p := range fig.Static {
		wantDefined := fig.Loads[i] <= 65536
		if p.Defined != wantDefined {
			t.Errorf("static at T=%v: Defined=%v, want %v", fig.Loads[i], p.Defined, wantDefined)
		}
	}
	// AFF always defined, monotone non-increasing.
	for i, p := range fig.AFF {
		if !p.Defined {
			t.Errorf("AFF undefined at T=%v", fig.Loads[i])
		}
		if i > 0 && p.E > fig.AFF[i-1].E {
			t.Errorf("AFF efficiency rose with load at T=%v", fig.Loads[i])
		}
	}
}

func TestEfficiencyFigureRender(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	for _, want := range []string{"AFF T=16", "AFF T=256", "AFF T=64K", "static 16-bit", "static 32-bit", "optimum for T=16: 9 bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestLoadFigureRender(t *testing.T) {
	out := Figure3().Render()
	if !strings.Contains(out, "undefined") {
		t.Error("Render() should mark static as undefined past exhaustion")
	}
	if !strings.Contains(out, "static 16-bit") {
		t.Error("Render() missing static column")
	}
}

func TestFormatCount(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{16, "16"},
		{256, "256"},
		{65536, "64K"},
		{1024, "1K"},
		{2.5, "2.5"},
	}
	for _, tt := range tests {
		if got := formatCount(tt.in); got != tt.want {
			t.Errorf("formatCount(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestModelColumnMatchesModelPackage(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.AFF {
		for _, p := range c.Points {
			want := model.EAFF(16, p.H, c.T)
			if math.Abs(p.E-want) > 1e-12 {
				t.Fatalf("curve %q at H=%d: %v != model %v", c.Label, p.H, p.E, want)
			}
		}
	}
}
