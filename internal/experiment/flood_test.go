package experiment

import (
	"strings"
	"testing"
	"time"
)

func quickFloodConfig() FloodConfig {
	cfg := DefaultFloodConfig()
	cfg.Grid = 4
	cfg.IDBits = []int{3, 8}
	cfg.Duration = 30 * time.Second
	cfg.Trials = 2
	return cfg
}

func TestAblationFloodIDBits(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := AblationFloodIDBits(quickFloodConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reach.Len() != 2 {
		t.Fatalf("series holds %d widths, want 2", res.Reach.Len())
	}
	narrow, _ := res.Reach.At(3)
	wide, _ := res.Reach.At(8)
	// With 8 concurrent-ish floods in a 16-node grid, a 3-bit pool (8
	// identifiers) suppresses many distinct events; an 8-bit pool should
	// reach clearly further.
	if wide.Mean <= narrow.Mean {
		t.Errorf("reach did not improve with identifier bits: %d-bit %.2f vs %d-bit %.2f",
			3, narrow.Mean, 8, wide.Mean)
	}
	// Every event reaches at least its neighbours on average at 8 bits.
	if wide.Mean < 3 {
		t.Errorf("8-bit reach %.2f implausibly low", wide.Mean)
	}
	out := res.Render()
	if !strings.Contains(out, "id bits") {
		t.Error("Render() incomplete")
	}
}

func TestAblationFloodValidation(t *testing.T) {
	bad := quickFloodConfig()
	bad.Grid = 1
	if _, err := AblationFloodIDBits(bad); err == nil {
		t.Error("tiny grid accepted")
	}
	bad = quickFloodConfig()
	bad.IDBits = nil
	if _, err := AblationFloodIDBits(bad); err == nil {
		t.Error("empty sweep accepted")
	}
}
