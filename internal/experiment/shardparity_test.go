package experiment

import (
	"testing"
	"time"
)

// These tests pin the acceptance contract for the sharded core's adopted
// mode: running an existing sweep's engines under the shard driver
// (single-tile, windowed, barrier-ticked) must leave the rendered output
// byte-for-byte identical to the legacy eng.Run() path — including
// energy meters, oracle reports and soak checkpoints, all of which are
// sensitive to the exact final clock.

// TestDynamicsShardWindowParity: the dynamics sweep, with the oracle
// attached, is byte-identical with and without ShardWindow, at more than
// one window size.
func TestDynamicsShardWindowParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cfg := smallDynamics()
	cfg.Oracle = true
	ref, err := Dynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range []time.Duration{500 * time.Microsecond, 3 * time.Millisecond, 40 * time.Millisecond} {
		cfg.ShardWindow = win
		got, err := Dynamics(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != got.Render() {
			t.Errorf("window %v: Render diverged\n--- legacy:\n%s--- sharded:\n%s", win, ref.Render(), got.Render())
		}
		if ref.CSV() != got.CSV() {
			t.Errorf("window %v: CSV diverged", win)
		}
	}
}

// TestChaosShardWindowParity: the chaos sweep — compound faults, ARQ,
// soak checkpoints — is byte-identical under the windowed driver.
func TestChaosShardWindowParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cfg := smallChaos()
	ref, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardWindow = 2 * time.Millisecond
	got, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Render() != got.Render() {
		t.Errorf("Render diverged\n--- legacy:\n%s--- sharded:\n%s", ref.Render(), got.Render())
	}
	if ref.CSV() != got.CSV() {
		t.Errorf("CSV diverged")
	}
	// The oracle gate must agree too: same violations (none) either way.
	for i, r := range got.Rows {
		if r.Oracle == nil {
			t.Fatalf("row %d: no oracle report under ShardWindow", i)
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("row %d: oracle violation under ShardWindow: %v", i, err)
		}
	}
}

// TestShardWindowValidation: negative windows are rejected by both sweeps.
func TestShardWindowValidation(t *testing.T) {
	d := DefaultDynamicsConfig()
	d.ShardWindow = -time.Millisecond
	if err := d.Validate(); err == nil {
		t.Error("dynamics accepted a negative shard window")
	}
	c := DefaultChaosConfig()
	c.ShardWindow = -time.Millisecond
	if err := c.Validate(); err == nil {
		t.Error("chaos accepted a negative shard window")
	}
}
