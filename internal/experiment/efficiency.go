package experiment

import (
	"fmt"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/energy"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// Scheme identifies a fragmentation stack for efficiency measurements.
type Scheme struct {
	// Kind is "aff" or "static".
	Kind string
	// Bits is the identifier width: RETRI pool bits for AFF, address
	// bits for static.
	Bits int
	// Selector applies to AFF (default uniform).
	Selector SelectorKind
}

// AFFScheme returns an AFF scheme with the given identifier width.
func AFFScheme(bits int, sel SelectorKind) Scheme {
	if sel == "" {
		sel = SelUniform
	}
	return Scheme{Kind: "aff", Bits: bits, Selector: sel}
}

// StaticScheme returns a static-addressing scheme with the given address
// width.
func StaticScheme(addrBits int) Scheme {
	return Scheme{Kind: "static", Bits: addrBits}
}

// Label renders the scheme for tables.
func (s Scheme) Label() string {
	if s.Kind == "static" {
		return staticLabel(s.Bits)
	}
	return fmt.Sprintf("AFF %d-bit (%s)", s.Bits, s.Selector)
}

// EfficiencyConfig parameterizes a measured-efficiency trial: several
// transmitters streaming packets at one sink, with Equation 1 evaluated
// from the actual meters — useful bits delivered at the sink over total
// bits put on the air.
type EfficiencyConfig struct {
	Seed         uint64
	Transmitters int
	PacketSize   int
	Duration     time.Duration
	Scheme       Scheme
	// MAC is the framing profile; per-frame overhead counts toward
	// on-air totals (the Section 4.4 ablation knob).
	MAC energy.MACProfile
	// Params overrides radio parameters (MAC profile is applied on top).
	Params *radio.Params
	// Parallelism is the number of trials simulated concurrently by the
	// sweeps built on this config (lifetime, MAC ablation); 0 or 1 runs
	// them sequentially with identical output.
	Parallelism int
	// Hooks carries progress and timing callbacks to the runner in sweeps
	// built on this config.
	Hooks RunHooks
}

// DefaultEfficiencyConfig mirrors the Figure 4 workload with RPC framing.
func DefaultEfficiencyConfig(scheme Scheme) EfficiencyConfig {
	return EfficiencyConfig{
		Seed:         1,
		Transmitters: 5,
		PacketSize:   80,
		Duration:     time.Minute,
		Scheme:       scheme,
		MAC:          energy.RPCProfile(),
	}
}

// EfficiencyOutcome reports one trial's Equation 1 measurements.
type EfficiencyOutcome struct {
	Scheme Scheme
	// UsefulBits is data delivered at the sink.
	UsefulBits int64
	// OnAirBits is every bit transmitted network-wide, including MAC
	// framing.
	OnAirBits int64
	// ProtocolBits is OnAirBits minus MAC framing — the quantity the
	// analytic model prices.
	ProtocolBits int64
	// PacketsDelivered and PacketsOffered count sink deliveries and
	// generator sends.
	PacketsDelivered int64
	PacketsOffered   int64
	// Joules is the network-wide energy spent under the default model.
	Joules float64
}

// E is measured Equation 1 efficiency including MAC framing.
func (o EfficiencyOutcome) E() float64 {
	if o.OnAirBits == 0 {
		return 0
	}
	return float64(o.UsefulBits) / float64(o.OnAirBits)
}

// EProtocol is measured efficiency over protocol bits only (comparable to
// the analytic model, which prices no MAC).
func (o EfficiencyOutcome) EProtocol() float64 {
	if o.ProtocolBits == 0 {
		return 0
	}
	return float64(o.UsefulBits) / float64(o.ProtocolBits)
}

// RunEfficiencyTrial measures one scheme under the standard workload.
func RunEfficiencyTrial(cfg EfficiencyConfig, src *xrand.Source) (EfficiencyOutcome, error) {
	if src == nil {
		src = xrand.NewSource(cfg.Seed).Child("efficiency")
	}
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	params.MAC = cfg.MAC
	med := radio.NewMedium(eng, radio.FullMesh{}, params, src.Stream("medium"))

	const sinkID radio.NodeID = 0
	sinkRadio := med.MustAttach(sinkID)
	sink, err := buildDriver(cfg.Scheme, sinkRadio, params, src, "sink")
	if err != nil {
		return EfficiencyOutcome{}, err
	}

	var offered int64
	txRadios := make([]*radio.Radio, 0, cfg.Transmitters)
	gens := make([]*workload.Continuous, 0, cfg.Transmitters)
	for i := 1; i <= cfg.Transmitters; i++ {
		label := fmt.Sprint(i)
		r := med.MustAttach(radio.NodeID(i))
		txRadios = append(txRadios, r)
		d, err := buildDriver(cfg.Scheme, r, params, src, label)
		if err != nil {
			return EfficiencyOutcome{}, err
		}
		gen := workload.NewContinuous(eng, d, cfg.PacketSize, 0, src.Stream("wl", label))
		gen.Start(cfg.Duration)
		gens = append(gens, gen)
	}

	eng.Run()

	out := EfficiencyOutcome{Scheme: cfg.Scheme}
	var total energy.Meter
	for _, r := range txRadios {
		m := r.Meter()
		out.OnAirBits += m.TxBits
		out.ProtocolBits += m.TxBits - int64(params.MAC.PerFrameOverhead)*m.TxFrames
		total.Add(m)
	}
	total.Add(sinkRadio.Meter())
	out.Joules = energy.DefaultModel().Joules(total)
	for _, g := range gens {
		offered += g.Stats().PacketsOffered
	}
	out.PacketsOffered = offered
	out.UsefulBits = sinkDeliveredBits(sink)
	out.PacketsDelivered = sink.PacketsDelivered()
	return out, nil
}

// buildDriver constructs the scheme's stack on a radio. Static addresses
// are the radio's node ID — a dense, optimal allocation, the strongest
// version of the baseline.
func buildDriver(s Scheme, r *radio.Radio, params radio.Params, src *xrand.Source, label string) (node.Driver, error) {
	switch s.Kind {
	case "static":
		return node.NewStatic(r, staticaddr.Config{
			AddrBits:          s.Bits,
			MTU:               params.MTU,
			ReassemblyTimeout: 250 * time.Millisecond,
		}, uint64(r.ID()))
	case "aff":
		space, err := core.NewSpace(s.Bits)
		if err != nil {
			return nil, err
		}
		est := density.New(0, 0, r.Now)
		sel, err := makeSelector(selectorOrDefault(s.Selector), space, src.Stream("sel", label), est.Window)
		if err != nil {
			return nil, err
		}
		return node.NewAFF(r, aff.Config{
			Space:             space,
			MTU:               params.MTU,
			ReassemblyTimeout: 250 * time.Millisecond,
		}, sel, node.AFFOptions{
			Estimator:  est,
			ObserveOwn: s.Selector == SelListening || s.Selector == SelListeningNotify,
		})
	default:
		return nil, fmt.Errorf("experiment: unknown scheme kind %q", s.Kind)
	}
}

func selectorOrDefault(k SelectorKind) SelectorKind {
	if k == "" {
		return SelUniform
	}
	return k
}

// sinkDeliveredBits extracts delivered payload bits from either driver.
func sinkDeliveredBits(d node.Driver) int64 {
	switch dd := d.(type) {
	case *node.AFFDriver:
		return dd.Reassembler().Stats().DeliveredBits
	case *node.StaticDriver:
		return dd.Reassembler().Stats().DeliveredBits
	default:
		return 0
	}
}
