package experiment

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"retri/internal/stats"
)

// CSV renderers for the figure results, for plotting outside the repo.
// Each emits a header row and one record per (x, series) sample.

// CSV renders a Figure 1/2 result: bits, series label, efficiency.
func (fig EfficiencyFigure) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"bits", "series", "efficiency"})
	curves := append(append([]Curve{}, fig.AFF...), fig.Static...)
	for _, c := range curves {
		for _, p := range c.Points {
			_ = w.Write([]string{
				strconv.Itoa(p.H),
				c.Label,
				formatFloat(p.E),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders a Figure 3 result: load, series, efficiency, defined.
func (fig LoadFigure) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"load", "series", "efficiency", "defined"})
	for i, t := range fig.Loads {
		_ = w.Write([]string{
			formatFloat(t),
			fmt.Sprintf("AFF %d-bit", fig.AFFBits),
			formatFloat(fig.AFF[i].E),
			strconv.FormatBool(fig.AFF[i].Defined),
		})
		_ = w.Write([]string{
			formatFloat(t),
			staticLabel(fig.StaticBits),
			formatFloat(fig.Static[i].E),
			strconv.FormatBool(fig.Static[i].Defined),
		})
	}
	w.Flush()
	return sb.String()
}

// CSV renders a Figure 4 result: bits, series, collision rate, stddev, n.
func (res Figure4Result) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"bits", "series", "collision_rate", "stddev", "trials"})
	for _, mp := range res.Model {
		_ = w.Write([]string{
			strconv.Itoa(mp.H), "model", formatFloat(mp.E), "0", "0",
		})
	}
	kinds := make([]SelectorKind, 0, len(res.Measured))
	for k := range res.Measured {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		for _, p := range res.Measured[k].Points() {
			_ = w.Write([]string{
				strconv.Itoa(int(p.X)),
				string(k),
				formatFloat(p.Y.Mean),
				formatFloat(p.Y.StdDev),
				strconv.Itoa(p.Y.N),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders the scaling sweep: one record per network size.
func (r ScalingResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"grid", "nodes", "collision_rate", "stddev", "mean_density",
		"static_exhausted", "static_bits", "e_aff_model", "e_static_model"})
	for _, p := range r.Points {
		_ = w.Write([]string{
			strconv.Itoa(p.Grid),
			strconv.Itoa(p.Nodes),
			formatFloat(p.CollisionRate.Mean),
			formatFloat(p.CollisionRate.StdDev),
			formatFloat(p.MeanDensity.Mean),
			strconv.FormatBool(p.StaticExhausted),
			strconv.Itoa(p.StaticBitsNeeded),
			formatFloat(p.EAFFModel),
			formatFloat(p.EStaticModel),
		})
	}
	w.Flush()
	return sb.String()
}

// CSV renders the window ablation; the adaptive 2T rule is the "adaptive"
// series with window 0.
func (r WindowAblationResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"window", "series", "collision_rate", "stddev", "trials"})
	for _, p := range r.Series.Points() {
		_ = w.Write([]string{
			strconv.Itoa(int(p.X)), "fixed",
			formatFloat(p.Y.Mean), formatFloat(p.Y.StdDev), strconv.Itoa(p.Y.N),
		})
	}
	_ = w.Write([]string{
		"0", "adaptive",
		formatFloat(r.Adaptive.Mean), formatFloat(r.Adaptive.StdDev), strconv.Itoa(r.Adaptive.N),
	})
	w.Flush()
	return sb.String()
}

// CSV renders the hidden-terminal ablation: topology x selector records.
func (r HiddenTerminalResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"topology", "selector", "collision_rate", "stddev", "trials"})
	kinds := make([]SelectorKind, 0, len(r.FullMesh))
	for k := range r.FullMesh {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	topos := []struct {
		name string
		m    map[SelectorKind]stats.Summary
	}{
		{"full", r.FullMesh}, {"shadowed", r.Shadowed}, {"hidden", r.Hidden},
	}
	for _, tc := range topos {
		for _, k := range kinds {
			s := tc.m[k]
			_ = w.Write([]string{
				tc.name, string(k),
				formatFloat(s.Mean), formatFloat(s.StdDev), strconv.Itoa(s.N),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders the MAC ablation: profile x scheme records.
func (r MACAblationResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"mac_profile", "scheme", "efficiency"})
	for _, p := range r.Profiles {
		for _, s := range r.Schemes {
			_ = w.Write([]string{p.Name, s.Label(), formatFloat(r.E[p.Name][s.Label()])})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders the transaction-length ablation.
func (r LengthAblationResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"series", "collision_rate", "stddev", "trials"})
	_ = w.Write([]string{"model_equal", formatFloat(r.Model), "0", "0"})
	_ = w.Write([]string{"model_poisson", formatFloat(r.ModelPoisson), "0", "0"})
	_ = w.Write([]string{"measured_fixed", formatFloat(r.Fixed.Mean), formatFloat(r.Fixed.StdDev), strconv.Itoa(r.Fixed.N)})
	_ = w.Write([]string{"measured_mixed", formatFloat(r.Mixed.Mean), formatFloat(r.Mixed.StdDev), strconv.Itoa(r.Mixed.N)})
	w.Flush()
	return sb.String()
}

// CSV renders the churn ablation: one record per lifetime and scheme.
func (r ChurnAblationResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"lifetime", "scheme", "efficiency", "control_bits", "send_failures", "rejoins"})
	for i, life := range r.Lifetimes {
		for _, scheme := range []string{"aff", "dynaddr"} {
			out := r.Outcomes[scheme][i]
			_ = w.Write([]string{
				life.String(), scheme,
				formatFloat(out.E()),
				strconv.FormatInt(out.ControlBits, 10),
				strconv.FormatInt(out.SendFailures, 10),
				strconv.FormatInt(out.Rejoins, 10),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders the estimator ablation: workload x estimator records.
func (r EstimatorAblationResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"workload", "estimator", "estimated_t", "estimated_t_stddev",
		"collision_rate", "stddev", "trials"})
	for _, wl := range r.Workloads {
		for _, est := range []EstimatorKind{EstEMA, EstInterval} {
			te := r.EstimatedT[wl][est]
			ce := r.Collision[wl][est]
			_ = w.Write([]string{
				wl, string(est),
				formatFloat(te.Mean), formatFloat(te.StdDev),
				formatFloat(ce.Mean), formatFloat(ce.StdDev), strconv.Itoa(ce.N),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders the flood ablation: one record per identifier width.
func (r FloodResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"id_bits", "mean_reach", "stddev", "trials"})
	for _, p := range r.Reach.Points() {
		_ = w.Write([]string{
			strconv.Itoa(int(p.X)),
			formatFloat(p.Y.Mean), formatFloat(p.Y.StdDev), strconv.Itoa(p.Y.N),
		})
	}
	w.Flush()
	return sb.String()
}

// CSV renders the lifetime comparison: one record per scheme.
func (r LifetimeResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"scheme", "joules_per_useful_kbit", "lifetime_factor", "efficiency", "baseline"})
	for i, row := range r.Rows {
		_ = w.Write([]string{
			row.Scheme.Label(),
			formatFloat(row.JoulesPerUsefulKbit),
			formatFloat(row.LifetimeFactor),
			formatFloat(row.E),
			strconv.FormatBool(i == r.Baseline),
		})
	}
	w.Flush()
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
