package experiment

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CSV renderers for the figure results, for plotting outside the repo.
// Each emits a header row and one record per (x, series) sample.

// CSV renders a Figure 1/2 result: bits, series label, efficiency.
func (fig EfficiencyFigure) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"bits", "series", "efficiency"})
	curves := append(append([]Curve{}, fig.AFF...), fig.Static...)
	for _, c := range curves {
		for _, p := range c.Points {
			_ = w.Write([]string{
				strconv.Itoa(p.H),
				c.Label,
				formatFloat(p.E),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// CSV renders a Figure 3 result: load, series, efficiency, defined.
func (fig LoadFigure) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"load", "series", "efficiency", "defined"})
	for i, t := range fig.Loads {
		_ = w.Write([]string{
			formatFloat(t),
			fmt.Sprintf("AFF %d-bit", fig.AFFBits),
			formatFloat(fig.AFF[i].E),
			strconv.FormatBool(fig.AFF[i].Defined),
		})
		_ = w.Write([]string{
			formatFloat(t),
			staticLabel(fig.StaticBits),
			formatFloat(fig.Static[i].E),
			strconv.FormatBool(fig.Static[i].Defined),
		})
	}
	w.Flush()
	return sb.String()
}

// CSV renders a Figure 4 result: bits, series, collision rate, stddev, n.
func (res Figure4Result) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"bits", "series", "collision_rate", "stddev", "trials"})
	for _, mp := range res.Model {
		_ = w.Write([]string{
			strconv.Itoa(mp.H), "model", formatFloat(mp.E), "0", "0",
		})
	}
	kinds := make([]SelectorKind, 0, len(res.Measured))
	for k := range res.Measured {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		for _, p := range res.Measured[k].Points() {
			_ = w.Write([]string{
				strconv.Itoa(int(p.X)),
				string(k),
				formatFloat(p.Y.Mean),
				formatFloat(p.Y.StdDev),
				strconv.Itoa(p.Y.N),
			})
		}
	}
	w.Flush()
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
