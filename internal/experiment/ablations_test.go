package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/radio"
)

func TestAblationListeningWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickConfig()
	cfg.Trials = 2
	cfg.Duration = 10 * time.Second
	res, err := AblationListeningWindow(cfg, 6, []int{1, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Len() != 3 {
		t.Fatalf("series has %d windows, want 3", res.Series.Len())
	}
	// A window of 1 barely avoids anything; a window of 10 (=2T) should
	// do measurably better.
	w1, _ := res.Series.At(1)
	w10, _ := res.Series.At(10)
	if w10.Mean >= w1.Mean {
		t.Errorf("window 10 (%.4f) should beat window 1 (%.4f)", w10.Mean, w1.Mean)
	}
	if res.Adaptive.N == 0 {
		t.Error("adaptive baseline missing")
	}
	out := res.Render()
	if !strings.Contains(out, "2T (adapt)") {
		t.Error("Render() missing adaptive row")
	}
}

func TestAblationHiddenTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickConfig()
	cfg.Trials = 2
	cfg.Duration = 10 * time.Second
	res, err := AblationHiddenTerminal(cfg, 5, []SelectorKind{SelUniform, SelListening})
	if err != nil {
		t.Fatal(err)
	}
	// Full mesh: listening beats uniform.
	if res.FullMesh[SelListening].Mean >= res.FullMesh[SelUniform].Mean {
		t.Errorf("full mesh: listening (%.4f) should beat uniform (%.4f)",
			res.FullMesh[SelListening].Mean, res.FullMesh[SelUniform].Mean)
	}
	// Hidden senders: listening's edge over uniform shrinks (footnote 3:
	// senders cannot hear each other, so there is little to learn from).
	edgeFull := res.FullMesh[SelUniform].Mean - res.FullMesh[SelListening].Mean
	edgeHidden := res.Hidden[SelUniform].Mean - res.Hidden[SelListening].Mean
	if edgeHidden > edgeFull {
		t.Errorf("listening edge should shrink when hidden: full=%.4f hidden=%.4f",
			edgeFull, edgeHidden)
	}
	out := res.Render()
	if !strings.Contains(out, "hidden senders") {
		t.Error("Render() missing hidden column")
	}
}

func TestHiddenStarTopologyShape(t *testing.T) {
	topo := HiddenStarTopology(3, 0)
	for i := 1; i <= 3; i++ {
		if !topo.Connected(0, radio.NodeID(i)) || !topo.Connected(radio.NodeID(i), 0) {
			t.Errorf("transmitter %d not linked to receiver", i)
		}
	}
	if topo.Connected(1, 2) || topo.Connected(2, 3) {
		t.Error("transmitters should be mutually hidden")
	}
}

func TestAblationTransactionLengths(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickConfig()
	cfg.Trials = 2
	cfg.Duration = 10 * time.Second
	res, err := AblationTransactionLengths(cfg, 6, []int{20, 80, 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed.N != 2 || res.Mixed.N != 2 {
		t.Fatalf("trial counts: fixed %d, mixed %d", res.Fixed.N, res.Mixed.N)
	}
	for _, v := range []float64{res.Fixed.Mean, res.Mixed.Mean} {
		if v < 0 || v > 1 {
			t.Errorf("collision rate %v outside [0,1]", v)
		}
	}
	// The extended model's prediction accompanies Eq. 4.
	if res.ModelPoisson <= 0 || res.ModelPoisson >= res.Model {
		t.Errorf("ModelPoisson = %v, want in (0, Eq4=%v) (exponential durations collide slightly less)",
			res.ModelPoisson, res.Model)
	}
	out := res.Render()
	if !strings.Contains(out, "equal lengths (Eq. 4)") || !strings.Contains(out, "exponential lengths") {
		t.Error("Render() missing model rows")
	}
}
