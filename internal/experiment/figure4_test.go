package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/xrand"
)

// quickConfig is a scaled-down Figure 4 setup for tests: the same five
// transmitters, shorter trials.
func quickConfig() Figure4Config {
	cfg := DefaultFigure4Config()
	cfg.Trials = 2
	cfg.Duration = 10 * time.Second
	cfg.IDBits = []int{4, 6, 8}
	return cfg
}

func TestRunCollisionTrialBasics(t *testing.T) {
	cfg := quickConfig()
	out, err := RunCollisionTrial(cfg, SelUniform, 6, xrand.NewSource(1).Child("trial"))
	if err != nil {
		t.Fatal(err)
	}
	if out.TruthDelivered == 0 {
		t.Fatal("no packets delivered at all")
	}
	if out.AFFDelivered > out.TruthDelivered {
		t.Errorf("AFF delivered %d > truth %d", out.AFFDelivered, out.TruthDelivered)
	}
	if out.CollisionRate < 0 || out.CollisionRate > 1 {
		t.Errorf("collision rate %v outside [0,1]", out.CollisionRate)
	}
	// The receiver's density estimate should be in the neighbourhood of
	// the number of streaming transmitters.
	if out.EstimatedT < 2 || out.EstimatedT > 10 {
		t.Errorf("EstimatedT = %v, want near 5", out.EstimatedT)
	}
}

func TestRunCollisionTrialDeterministic(t *testing.T) {
	cfg := quickConfig()
	cfg.Duration = 5 * time.Second
	a, err := RunCollisionTrial(cfg, SelListening, 6, xrand.NewSource(9).Child("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCollisionTrial(cfg, SelListening, 6, xrand.NewSource(9).Child("det"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestFigure4TracksModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickConfig()
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform selection should track Equation 4: within a factor of two
	// above 5% absolute tolerance (short trials are noisy).
	uniform := res.Measured[SelUniform]
	for _, mp := range res.Model {
		got, ok := uniform.At(float64(mp.H))
		if !ok {
			t.Fatalf("no measurement at %d bits", mp.H)
		}
		lo, hi := mp.E/2-0.05, mp.E*2+0.05
		if got.Mean < lo || got.Mean > hi {
			t.Errorf("uniform at %d bits: measured %.4f, model %.4f (want within [%.4f, %.4f])",
				mp.H, got.Mean, mp.E, lo, hi)
		}
	}
	// Listening strictly helps at moderate identifier sizes.
	listening := res.Measured[SelListening]
	for _, bits := range []float64{6, 8} {
		u, _ := uniform.At(bits)
		l, _ := listening.At(bits)
		if l.Mean >= u.Mean {
			t.Errorf("at %v bits listening (%.4f) should beat uniform (%.4f)", bits, l.Mean, u.Mean)
		}
	}
	// Collision rate falls as identifiers widen.
	pts := uniform.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Y.Mean > pts[i-1].Y.Mean {
			t.Errorf("uniform collision rate rose from %d to %d bits", int(pts[i-1].X), int(pts[i].X))
		}
	}
}

func TestFigure4Render(t *testing.T) {
	cfg := quickConfig()
	cfg.IDBits = []int{6}
	cfg.Trials = 1
	cfg.Duration = 5 * time.Second
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"bits", "model", "uniform", "listening", "ground truth"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestFigure4ValidatesConfig(t *testing.T) {
	bad := quickConfig()
	bad.Transmitters = 0
	if _, err := Figure4(bad); err == nil {
		t.Error("zero transmitters accepted")
	}
	bad = quickConfig()
	bad.IDBits = nil
	if _, err := Figure4(bad); err == nil {
		t.Error("empty IDBits accepted")
	}
}

func TestMakeSelectorUnknownKind(t *testing.T) {
	cfg := quickConfig()
	if _, err := RunCollisionTrial(cfg, SelectorKind("bogus"), 6, xrand.NewSource(1).Child("x")); err == nil {
		t.Error("unknown selector kind accepted")
	}
}

func TestSequentialSelectorPersistentCollisions(t *testing.T) {
	// The ablation control: deterministic selection starting in phase
	// produces far more collisions than uniform at the same width.
	cfg := quickConfig()
	cfg.Duration = 10 * time.Second
	seqOut, err := RunCollisionTrial(cfg, SelSequential, 8, xrand.NewSource(3).Child("seq"))
	if err != nil {
		t.Fatal(err)
	}
	uniOut, err := RunCollisionTrial(cfg, SelUniform, 8, xrand.NewSource(3).Child("uni"))
	if err != nil {
		t.Fatal(err)
	}
	// Sequential selectors start at random phases here, so they may or
	// may not collide persistently; what must hold is that the run
	// completes and rates are sane.
	if seqOut.CollisionRate < 0 || seqOut.CollisionRate > 1 {
		t.Errorf("sequential collision rate %v insane", seqOut.CollisionRate)
	}
	_ = uniOut
}
