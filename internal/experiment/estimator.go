package experiment

import (
	"fmt"
	"strings"
	"time"

	"retri/internal/runner"
	"retri/internal/stats"
	"retri/internal/xrand"
)

// EstimatorAblationResult compares the two density estimators (the
// Section 8 "more accurate ways of estimating T" question) on saturating
// and bursty workloads.
type EstimatorAblationResult struct {
	Config Figure4Config
	IDBits int
	// EstimatedT[workload][estimator] summarizes the receiver's final
	// density estimate across trials.
	EstimatedT map[string]map[EstimatorKind]stats.Summary
	// Collision[workload][estimator] summarizes the listening selector's
	// collision rate when driven by that estimator's adaptive window.
	Collision map[string]map[EstimatorKind]stats.Summary
	// Workloads lists the scenario names in render order.
	Workloads []string
}

// AblationEstimator runs the comparison. Under the continuous workload the
// true density equals the transmitter count; under the bursty workload
// (periodic senders at low duty cycle) the true time-averaged density is
// far lower, which is where fragment-sampled estimation overshoots.
func AblationEstimator(cfg Figure4Config, idBits int) (EstimatorAblationResult, error) {
	res := EstimatorAblationResult{
		Config:     cfg,
		IDBits:     idBits,
		EstimatedT: make(map[string]map[EstimatorKind]stats.Summary),
		Collision:  make(map[string]map[EstimatorKind]stats.Summary),
		Workloads:  []string{"continuous", "bursty"},
	}
	src := xrand.NewSource(cfg.Seed).Child("ablation-estimator")
	type job struct {
		cfg      Figure4Config
		workload string
		est      EstimatorKind
		src      *xrand.Source
	}
	var jobs []job
	for _, workload := range res.Workloads {
		res.EstimatedT[workload] = make(map[EstimatorKind]stats.Summary)
		res.Collision[workload] = make(map[EstimatorKind]stats.Summary)
		for _, est := range []EstimatorKind{EstEMA, EstInterval} {
			run := cfg
			run.Estimator = est
			if workload == "bursty" {
				run.Interval = 2 * time.Second
			}
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{run, workload, est, src.Child(workload, string(est), fmt.Sprint(trial))})
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (TrialOutcome, error) {
		return RunCollisionTrial(jobs[i].cfg, SelListening, idBits, jobs[i].src)
	})
	if err != nil {
		return EstimatorAblationResult{}, err
	}
	if err := foldTrialObs(cfg.Obs, outs, func(i int) string {
		return fmt.Sprintf("ablation-estimator workload=%s est=%s", jobs[i].workload, jobs[i].est)
	}); err != nil {
		return EstimatorAblationResult{}, err
	}
	var tAcc, cAcc stats.Accumulator
	for i, out := range outs {
		tAcc.Add(out.EstimatedT)
		cAcc.Add(out.CollisionRate)
		if (i+1)%cfg.Trials == 0 {
			res.EstimatedT[jobs[i].workload][jobs[i].est] = tAcc.Summary()
			res.Collision[jobs[i].workload][jobs[i].est] = cAcc.Summary()
			tAcc, cAcc = stats.Accumulator{}, stats.Accumulator{}
		}
	}
	return res, nil
}

// Render renders the estimator ablation.
func (r EstimatorAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Density-estimator ablation (%d-bit identifiers, %d transmitters)\n",
		r.IDBits, r.Config.Transmitters)
	fmt.Fprintf(&b, "%12s %10s %22s %24s\n", "workload", "estimator", "estimated T", "collision rate")
	for _, w := range r.Workloads {
		for _, est := range []EstimatorKind{EstEMA, EstInterval} {
			te := r.EstimatedT[w][est]
			ce := r.Collision[w][est]
			fmt.Fprintf(&b, "%12s %10s %14.2f ± %5.2f %15.6f ± %6.4f\n",
				w, est, te.Mean, te.StdDev, ce.Mean, ce.StdDev)
		}
	}
	b.WriteString("(continuous: true T = transmitter count; bursty: true time-averaged T ≈ duty cycle × transmitters, well below it)\n")
	return b.String()
}
