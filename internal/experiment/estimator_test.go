package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/xrand"
)

func TestRunCollisionTrialWithIntervalEstimator(t *testing.T) {
	cfg := quickConfig()
	cfg.Duration = 10 * time.Second
	cfg.Estimator = EstInterval
	out, err := RunCollisionTrial(cfg, SelListening, 6, xrand.NewSource(8).Child("ivl"))
	if err != nil {
		t.Fatal(err)
	}
	if out.TruthDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Under continuous load the interval estimator should also land near
	// the transmitter count.
	if out.EstimatedT < 2 || out.EstimatedT > 10 {
		t.Errorf("EstimatedT = %v, want near 5", out.EstimatedT)
	}
}

func TestAblationEstimatorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := quickConfig()
	cfg.Trials = 2
	cfg.Duration = 20 * time.Second
	res, err := AblationEstimator(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous: both estimators near T=5.
	for _, est := range []EstimatorKind{EstEMA, EstInterval} {
		got := res.EstimatedT["continuous"][est].Mean
		if got < 2.5 || got > 8 {
			t.Errorf("continuous %s estimate = %.2f, want near 5", est, got)
		}
	}
	// Bursty: the interval estimator must report lower density than the
	// EMA (closer to the low true time-average).
	ema := res.EstimatedT["bursty"][EstEMA].Mean
	ivl := res.EstimatedT["bursty"][EstInterval].Mean
	if ivl >= ema {
		t.Errorf("bursty: interval estimate (%.2f) should sit below EMA (%.2f)", ivl, ema)
	}
	out := res.Render()
	if !strings.Contains(out, "bursty") || !strings.Contains(out, "interval") {
		t.Error("Render() missing rows")
	}
}
