package experiment

import (
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/xrand"
)

func TestShadowedClusterTopologyShape(t *testing.T) {
	const n = 8
	topo := ShadowedClusterTopology(n, 0)
	// Every transmitter must reach the receiver (guaranteed links).
	for i := 1; i <= n; i++ {
		if !topo.Connected(radio.NodeID(i), 0) || !topo.Connected(0, radio.NodeID(i)) {
			t.Errorf("transmitter %d lost its receiver link", i)
		}
	}
	// Shadowing must produce a genuinely partial mesh: some transmitter
	// pairs hear each other, some do not.
	heard, hidden := 0, 0
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if topo.Connected(radio.NodeID(i), radio.NodeID(j)) {
				heard++
			} else {
				hidden++
			}
		}
	}
	if heard == 0 {
		t.Error("no transmitter pair hears each other; cluster degenerated to the hidden star")
	}
	if hidden == 0 {
		t.Error("every transmitter pair hears each other; cluster degenerated to the full mesh")
	}
	// The factory is deterministic: rebuilding yields identical links.
	again := ShadowedClusterTopology(n, 0)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if topo.Connected(radio.NodeID(i), radio.NodeID(j)) != again.Connected(radio.NodeID(i), radio.NodeID(j)) {
				t.Fatalf("topology not reproducible at pair (%d, %d)", i, j)
			}
		}
	}
}

func TestScalingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := quickScalingConfig()
	cfg.GridSizes = []int{3}
	cfg.Trials = 1
	cfg.Duration = 15 * time.Second
	a, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0].CollisionRate.Mean != b.Points[0].CollisionRate.Mean ||
		a.Points[0].MeanDensity.Mean != b.Points[0].MeanDensity.Mean {
		t.Errorf("scaling runs diverged: %+v vs %+v", a.Points[0], b.Points[0])
	}
}

func TestFloodTrialDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := quickFloodConfig()
	cfg.Grid = 3
	cfg.Duration = 15 * time.Second
	a, err := runFloodTrial(cfg, 5, xrand.NewSource(4).Child("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFloodTrial(cfg, 5, xrand.NewSource(4).Child("det"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("flood trials diverged: %v vs %v", a, b)
	}
}
