package experiment

import (
	"fmt"
	"strings"
	"time"

	"retri/internal/energy"
	"retri/internal/runner"
	"retri/internal/xrand"
)

// LifetimeResult translates measured efficiency into the quantity the
// paper actually argues about: network lifetime. "Every bit transmitted
// reduces the lifetime of the network" (Section 2.3), so at a fixed
// application-level delivery requirement the network's life extends in
// proportion to the energy each scheme spends per useful bit.
type LifetimeResult struct {
	Config EfficiencyConfig
	// Rows, one per scheme, in the order given.
	Rows []LifetimeRow
	// Baseline indexes the scheme all lifetime factors are relative to.
	Baseline int
}

// LifetimeRow is one scheme's energy accounting.
type LifetimeRow struct {
	Scheme Scheme
	// JoulesPerUsefulKbit is network-wide radio energy divided by useful
	// bits delivered at the sink, scaled to kilobits.
	JoulesPerUsefulKbit float64
	// LifetimeFactor is the baseline's Joules-per-useful-bit divided by
	// this scheme's: >1 means the scheme outlives the baseline at equal
	// delivered data.
	LifetimeFactor float64
	// E is the measured Equation 1 efficiency, for cross-reference.
	E float64
}

// RunLifetime measures Joules per useful bit for each scheme under the
// same workload, normalizing lifetimes against the last scheme in the
// list (conventionally the widest static baseline).
func RunLifetime(base EfficiencyConfig, schemes []Scheme) (LifetimeResult, error) {
	if len(schemes) < 2 {
		return LifetimeResult{}, fmt.Errorf("experiment: lifetime comparison needs >= 2 schemes")
	}
	res := LifetimeResult{Config: base, Baseline: len(schemes) - 1}
	src := xrand.NewSource(base.Seed).Child("lifetime")
	costs := make([]float64, len(schemes))
	outs, err := runner.Map(len(schemes), base.Hooks.runnerOptions(base.Parallelism), func(i int) (EfficiencyOutcome, error) {
		cfg := base
		cfg.Scheme = schemes[i]
		return RunEfficiencyTrial(cfg, src.Child(schemes[i].Label()))
	})
	if err != nil {
		return LifetimeResult{}, err
	}
	for i, out := range outs {
		s := schemes[i]
		if out.UsefulBits == 0 {
			return LifetimeResult{}, fmt.Errorf("experiment: scheme %s delivered nothing", s.Label())
		}
		costs[i] = out.Joules / float64(out.UsefulBits)
		res.Rows = append(res.Rows, LifetimeRow{
			Scheme:              s,
			JoulesPerUsefulKbit: costs[i] * 1000,
			E:                   out.E(),
		})
	}
	baseCost := costs[res.Baseline]
	for i := range res.Rows {
		res.Rows[i].LifetimeFactor = baseCost / costs[i]
	}
	return res, nil
}

// DefaultLifetimeSchemes is the paper's comparison set.
func DefaultLifetimeSchemes() []Scheme {
	return []Scheme{
		AFFScheme(9, SelUniform),
		AFFScheme(9, SelListening),
		StaticScheme(16),
		StaticScheme(32),
	}
}

// Render renders the lifetime comparison.
func (r LifetimeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Energy per useful bit and relative network lifetime (%d senders, %dB packets, %v)\n",
		r.Config.Transmitters, r.Config.PacketSize, r.Config.Duration)
	fmt.Fprintf(&b, "%-24s %18s %12s %10s\n", "scheme", "J/useful kbit", "lifetime x", "E (Eq.1)")
	for i, row := range r.Rows {
		mark := ""
		if i == r.Baseline {
			mark = "  (baseline)"
		}
		fmt.Fprintf(&b, "%-24s %18.6f %12.3f %10.4f%s\n",
			row.Scheme.Label(), row.JoulesPerUsefulKbit, row.LifetimeFactor, row.E, mark)
	}
	return b.String()
}

// quickLifetimeConfig builds the standard workload for the comparison.
func quickLifetimeConfig(seed uint64, d time.Duration) EfficiencyConfig {
	cfg := DefaultEfficiencyConfig(Scheme{})
	cfg.Seed = seed
	cfg.Duration = d
	cfg.MAC = energy.RPCProfile()
	return cfg
}

// DefaultLifetimeConfig is the full-size run used by the harness.
func DefaultLifetimeConfig(seed uint64) EfficiencyConfig {
	return quickLifetimeConfig(seed, time.Minute)
}
