package experiment

import (
	"testing"
	"time"

	"retri/internal/oracle"
	"retri/internal/span"
)

// The span tracer mirrors the oracle's ground-truth state machine, so
// on instrumented figures the two must agree exactly on every lifecycle
// count driven by send instants: opened, closed, abandoned, revived,
// fragments, collisions, freshness, and delivery audits. Stalls are the
// one one-sided count — the oracle also prunes at probe instants, so it
// can stall an end-of-run tail the span tracer (which only prunes when
// a frame airs) never sees; span stalls must never exceed the oracle's.
func checkConformance(t *testing.T, what string, srep span.Report, orep oracle.Report) {
	t.Helper()
	type pair struct {
		name       string
		span, orcl int64
	}
	for _, p := range []pair{
		{"opened", srep.Opened, orep.TransactionsOpened},
		{"closed", srep.Closed, orep.TransactionsClosed},
		{"abandoned", srep.Abandoned, orep.TransactionsAbandoned},
		{"revived", srep.Revived, orep.TransactionsRevived},
		{"fragments-sent", srep.FragmentsSent, orep.FragmentsSent},
		{"collision-events", srep.CollisionEvents, orep.CollisionEvents},
		{"freshness-violations", srep.FreshnessViolations, orep.FreshnessViolations},
		{"unattributed", srep.Unattributed, orep.Unaudited},
		{"packets-delivered", srep.PacketsDelivered, orep.PacketsAudited},
	} {
		if p.span != p.orcl {
			t.Errorf("%s: span %s = %d, oracle = %d", what, p.name, p.span, p.orcl)
		}
	}
	if srep.Stalled > orep.TransactionsStalled {
		t.Errorf("%s: span stalled = %d exceeds oracle %d", what, srep.Stalled, orep.TransactionsStalled)
	}
	if srep.Opened == 0 {
		t.Errorf("%s: no transactions traced — conformance vacuous", what)
	}
	if srep.Anomalies != 0 || srep.OrphanEvents != 0 {
		t.Errorf("%s: span anomalies=%d orphans=%d, want 0", what, srep.Anomalies, srep.OrphanEvents)
	}
}

// ledgerStateCounts cross-checks the flattened records against the
// report: the per-span stories and the aggregate counters are two views
// of one machine.
func ledgerStateCounts(t *testing.T, what string, led *span.Ledger) {
	t.Helper()
	rep := led.Report()
	var closed, abandoned, spans int64
	for _, r := range led.Records() {
		spans++
		switch r.State {
		case "closed":
			closed++
		case "abandoned":
			abandoned++
		}
		if r.OpenedNS >= 0 && r.FragsSent == 0 {
			t.Errorf("%s: span %s#%d opened with no fragments", what, r.Trial, r.Span)
		}
	}
	if spans != rep.Spans || closed != rep.Closed || abandoned != rep.Abandoned {
		t.Errorf("%s: records (spans=%d closed=%d abandoned=%d) vs report (spans=%d closed=%d abandoned=%d)",
			what, spans, closed, abandoned, rep.Spans, rep.Closed, rep.Abandoned)
	}
}

func TestSpanOracleConformanceDynamics(t *testing.T) {
	cfg := DefaultDynamicsConfig()
	cfg.Senders = 5
	cfg.Duration = 30 * time.Second
	cfg.Trials = 2
	// Churn exercises the whole lifecycle: crashes abandon transactions
	// mid-flight, duty cycles stall and revive them, and the narrow
	// fixed pool forces identifier collisions.
	cfg.Scenarios = []DynScenario{DynChurn}
	cfg.Policies = []WidthPolicyKind{WidthFixed, WidthAdaptive}
	cfg.FixedBits = 4
	cfg.Oracle = true
	led := span.NewLedger()
	cfg.Obs = &Obs{Spans: led}

	res, err := Dynamics(cfg)
	if err != nil {
		t.Fatalf("Dynamics: %v", err)
	}
	var orep oracle.Report
	for _, r := range res.Rows {
		if r.Oracle == nil {
			t.Fatalf("row %s/%s missing oracle report", r.Scenario, r.Policy)
		}
		orep.Merge(*r.Oracle)
	}
	checkConformance(t, "dynamics", led.Report(), orep)
	ledgerStateCounts(t, "dynamics", led)
}

func TestSpanOracleConformanceStrategies(t *testing.T) {
	cfg := DefaultStrategiesConfig()
	cfg.Strategies = []string{"uniform", "listening"}
	cfg.Densities = []int{5}
	cfg.IDBits = 4 // narrow pool: collisions guaranteed
	cfg.Duration = 20 * time.Second
	cfg.Trials = 2
	cfg.Oracle = true
	led := span.NewLedger()
	cfg.Obs = &Obs{Spans: led}

	res, err := Strategies(cfg)
	if err != nil {
		t.Fatalf("Strategies: %v", err)
	}
	var orep oracle.Report
	for _, r := range res.Rows {
		if r.Oracle == nil {
			t.Fatalf("row %s/%d missing oracle report", r.Strategy, r.T)
		}
		orep.Merge(*r.Oracle)
	}
	srep := led.Report()
	checkConformance(t, "strategies", srep, orep)
	if srep.CollisionEvents == 0 {
		t.Error("strategies: narrow pool produced no collisions — scenario too tame to validate collision parity")
	}
	ledgerStateCounts(t, "strategies", led)
}

// Parallel and sequential runs of the same seed must fold to the same
// ledger — the capture-then-merge discipline, extended to spans.
func TestSpanLedgerParallelDeterminism(t *testing.T) {
	run := func(parallelism int) *span.Ledger {
		cfg := DefaultStrategiesConfig()
		cfg.Strategies = []string{"uniform"}
		cfg.Densities = []int{3}
		cfg.IDBits = 6
		cfg.Duration = 10 * time.Second
		cfg.Trials = 3
		cfg.Oracle = false
		cfg.Parallelism = parallelism
		led := span.NewLedger()
		cfg.Obs = &Obs{Spans: led}
		if _, err := Strategies(cfg); err != nil {
			t.Fatalf("Strategies(parallelism=%d): %v", parallelism, err)
		}
		return led
	}
	seq := run(1)
	par := run(4)
	sr, pr := seq.Records(), par.Records()
	if len(sr) != len(pr) {
		t.Fatalf("record counts differ: %d vs %d", len(sr), len(pr))
	}
	for i := range sr {
		if sr[i].Trial != pr[i].Trial || sr[i].Key != pr[i].Key ||
			sr[i].OpenedNS != pr[i].OpenedNS || sr[i].Outcome != pr[i].Outcome {
			t.Fatalf("record %d differs:\nseq: %+v\npar: %+v", i, sr[i], pr[i])
		}
	}
	if seq.Report() != par.Report() {
		t.Fatalf("reports differ:\nseq: %+v\npar: %+v", seq.Report(), par.Report())
	}
}
