package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/model"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// ScalingConfig parameterizes the network-growth experiment behind the
// paper's central scaling claim: "identifier sizes grow with a system's
// density, not its overall size" (Section 1). Nodes sit on an n×n grid
// with short-range radios and strictly local (single-hop broadcast)
// periodic traffic, so the transaction density any node sees is set by
// its neighbourhood and stays constant as the grid grows.
type ScalingConfig struct {
	Seed uint64
	// GridSizes lists the n of each n×n deployment.
	GridSizes []int
	// Spacing is the grid pitch; Range is the radio range. The defaults
	// (5, 7.5) connect each interior node to its 8 neighbours.
	Spacing float64
	Range   float64
	// IDBits is the fixed RETRI pool width under test.
	IDBits int
	// PacketSize and Interval shape each node's periodic traffic.
	PacketSize int
	Interval   time.Duration
	// Duration is simulated time per trial; Trials the repetition count.
	Duration time.Duration
	Trials   int
	// Parallelism is the number of trials simulated concurrently; 0 or 1
	// runs them sequentially with identical output.
	Parallelism int
	// Hooks carries progress and timing callbacks to the runner.
	Hooks RunHooks
}

// DefaultScalingConfig fixes a 5-bit pool: far too small to *name* the
// larger deployments (a 5-bit static space is exhausted beyond 32 nodes)
// yet ample for the local transaction density, which is the claim.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Seed:       1,
		GridSizes:  []int{4, 8, 12},
		Spacing:    5,
		Range:      7.5,
		IDBits:     5,
		PacketSize: 32,
		Interval:   time.Second,
		Duration:   time.Minute,
		Trials:     3,
	}
}

// ScalingPoint is the measurement at one network size.
type ScalingPoint struct {
	// Grid and Nodes describe the deployment.
	Grid  int
	Nodes int
	// CollisionRate aggregates, across trials, the fraction of
	// ground-truth-reassembled packets lost on the AFF identifier alone,
	// summed over every receiver in the network.
	CollisionRate stats.Summary
	// MeanDensity is the average per-node time-averaged transaction
	// density (the interval estimator at end of trial).
	MeanDensity stats.Summary
	// StaticBitsNeeded is the smallest address width an optimally
	// allocated static scheme needs for this deployment.
	StaticBitsNeeded int
	// StaticExhausted reports whether a static space of the *same* width
	// as the RETRI pool under test could even name this deployment.
	StaticExhausted bool
	// EAFFModel and EStaticModel are the model's efficiencies at the
	// config's packet size: AFF at the fixed IDBits and measured density,
	// versus optimal static allocation at StaticBitsNeeded.
	EAFFModel    float64
	EStaticModel float64
}

// ScalingResult is the full sweep.
type ScalingResult struct {
	Config ScalingConfig
	Points []ScalingPoint
}

// RunScaling executes the sweep.
func RunScaling(cfg ScalingConfig) (ScalingResult, error) {
	if len(cfg.GridSizes) == 0 || cfg.Trials < 1 {
		return ScalingResult{}, fmt.Errorf("experiment: degenerate scaling config %+v", cfg)
	}
	res := ScalingResult{Config: cfg}
	src := xrand.NewSource(cfg.Seed).Child("scaling")
	type job struct {
		n   int
		src *xrand.Source
	}
	jobs := make([]job, 0, len(cfg.GridSizes)*cfg.Trials)
	for _, n := range cfg.GridSizes {
		for trial := 0; trial < cfg.Trials; trial++ {
			jobs = append(jobs, job{n, src.Child(fmt.Sprint(n), fmt.Sprint(trial))})
		}
	}
	type outcome struct{ coll, dens float64 }
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (outcome, error) {
		c, d, err := runScalingTrial(cfg, jobs[i].n, jobs[i].src)
		return outcome{c, d}, err
	})
	if err != nil {
		return ScalingResult{}, err
	}
	for gi, n := range cfg.GridSizes {
		var coll, dens stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[gi*cfg.Trials+trial]
			coll.Add(out.coll)
			dens.Add(out.dens)
		}
		nodes := n * n
		staticBits := bitsForPopulation(nodes)
		dataBits := 8 * cfg.PacketSize
		res.Points = append(res.Points, ScalingPoint{
			Grid:             n,
			Nodes:            nodes,
			CollisionRate:    coll.Summary(),
			MeanDensity:      dens.Summary(),
			StaticBitsNeeded: staticBits,
			StaticExhausted:  uint64(nodes) > uint64(1)<<uint(cfg.IDBits),
			EAFFModel:        model.EAFF(dataBits, cfg.IDBits, dens.Mean()),
			EStaticModel:     model.EStatic(dataBits, staticBits),
		})
	}
	return res, nil
}

// runScalingTrial builds one grid deployment and measures the network-wide
// identifier-collision rate and mean observed density.
func runScalingTrial(cfg ScalingConfig, n int, src *xrand.Source) (collisionRate, meanDensity float64, err error) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(cfg.Range)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("medium"))

	affCfg := aff.Config{
		Space:             core.MustSpace(cfg.IDBits),
		MTU:               27,
		Instrument:        true,
		ReassemblyTimeout: 2 * cfg.Interval,
	}

	type station struct {
		truth *aff.TruthReassembler
		drv   *node.AFFDriver
		est   *density.IntervalEstimator
	}
	stations := make([]station, 0, n*n)

	id := 0
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			nid := radio.NodeID(id)
			id++
			disk.Place(nid, radio.Point{X: float64(col) * cfg.Spacing, Y: float64(row) * cfg.Spacing})
			r := med.MustAttach(nid)
			label := fmt.Sprint(nid)
			est := density.NewInterval(0, 0, eng.Now)
			sel := core.NewUniformSelector(affCfg.Space, src.Stream("sel", label))
			truth := aff.NewTruthReassembler(affCfg, eng.Now)
			drv, err := node.NewAFF(r, affCfg, sel, node.AFFOptions{
				Estimator: est,
				Truth:     truth,
			})
			if err != nil {
				return 0, 0, err
			}
			gen := workload.NewPeriodic(eng, drv, cfg.PacketSize, cfg.Interval, cfg.Interval/2, src.Stream("wl", label))
			gen.Start(cfg.Duration)
			stations = append(stations, station{truth: truth, drv: drv, est: est})
		}
	}

	eng.Run()

	var truthTotal, affTotal int64
	var densSum float64
	for _, s := range stations {
		truthTotal += s.truth.Stats().Delivered
		affTotal += s.drv.Reassembler().Stats().Delivered
		densSum += s.est.Estimate()
	}
	if truthTotal > 0 {
		lost := truthTotal - affTotal
		if lost < 0 {
			lost = 0
		}
		collisionRate = float64(lost) / float64(truthTotal)
	}
	meanDensity = densSum / float64(len(stations))
	return collisionRate, meanDensity, nil
}

// bitsForPopulation is the optimal static allocation: ceil(log2(nodes)).
func bitsForPopulation(nodes int) int {
	if nodes <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(nodes))))
}

// Render renders the scaling sweep.
func (r ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: fixed %d-bit RETRI identifiers vs optimal static allocation as the network grows\n", r.Config.IDBits)
	fmt.Fprintf(&b, "(%d-byte packets every %v per node, 8-neighbour locality, %d trials x %v)\n",
		r.Config.PacketSize, r.Config.Interval, r.Config.Trials, r.Config.Duration)
	fmt.Fprintf(&b, "%8s %7s %22s %14s %16s %12s %12s %12s\n",
		"grid", "nodes", "collision rate", "mean density",
		fmt.Sprintf("%d-bit static?", r.Config.IDBits), "static bits", "E_aff(model)", "E_static")
	for _, p := range r.Points {
		sameWidth := "OK"
		if p.StaticExhausted {
			sameWidth = "exhausted"
		}
		fmt.Fprintf(&b, "%5dx%-2d %7d %13.6f ± %6.4f %14.2f %16s %12d %12.4f %12.4f\n",
			p.Grid, p.Grid, p.Nodes, p.CollisionRate.Mean, p.CollisionRate.StdDev,
			p.MeanDensity.Mean, sameWidth, p.StaticBitsNeeded, p.EAFFModel, p.EStaticModel)
	}
	return b.String()
}
