package experiment

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
	"time"

	"retri/internal/mobility"
	"retri/internal/shard"
	"retri/internal/xrand"
)

// MassiveConfig parameterizes the massive-population sweep: the same
// duty-cycled machine-type workload run at populations two orders of
// magnitude apart, on the region-sharded core (internal/shard) instead of
// the legacy per-node object stack. The world's area grows with the
// population (tiles of side Range holding NodesPerTile nodes each), so the
// spatial node density — and with the same duty cycle, the awake
// transaction density T — stays roughly constant while N varies. That is
// the paper's thesis stated as an experiment: identifier width must track
// T, not N.
type MassiveConfig struct {
	// Seed roots all randomness; each (population, policy, trial) cell
	// derives its own labelled source.
	Seed uint64
	// Populations are the node counts swept, in row order.
	Populations []int
	// Trials per (population, policy) cell; counters merge across trials.
	Trials int
	// Duration is simulated time per trial.
	Duration time.Duration
	// Policies are the width arms compared. The sharded sensor model
	// supports WidthFixed (every transaction at FixedBits) and
	// WidthAdaptiveTurnover (width from Eq. 4 against the node's live
	// partial-set estimate of T, which retires an identifier the moment
	// its transaction completes — the turnover rule).
	Policies []WidthPolicyKind
	// NodesPerTile sets the shard grain; tile side equals Range.
	NodesPerTile int
	// Range is the radio range.
	Range float64
	// Duty is the sleep/wake schedule every node runs.
	Duty mobility.DutyCycle
	// SendGap is the mean exponential gap between transactions while awake.
	SendGap time.Duration
	// Fragments, FrameAir and FragGap shape one transaction on the air;
	// FrameAir is also the engine's conservative lookahead.
	Fragments int
	FrameAir  time.Duration
	FragGap   time.Duration
	// PacketSize is the application payload in bytes (Eq. 4's D is its
	// bit size).
	PacketSize int
	// FixedBits is the fixed arm's width; MinBits/MaxBits clamp the
	// adaptive arm.
	FixedBits        int
	MinBits, MaxBits int
	// FrameLoss is the independent per-receiver frame-loss probability.
	FrameLoss float64
	// ProbeEvery spaces the omniscient concurrency probes; AuditEvery
	// samples every k-th node for never-misdeliver and freshness audits.
	ProbeEvery time.Duration
	AuditEvery int
	// Parallelism is the per-trial shard worker count (the -parallel
	// flag). Results are byte-identical at every setting; trials
	// themselves run sequentially — the parallelism lives inside a trial,
	// which is the point of the sharded core.
	Parallelism int
	// Hooks reports per-trial wall time to the observability layer.
	Hooks RunHooks
}

// DefaultMassiveConfig is the machine-type random-access regime: a 2%
// duty cycle over tiles of 500 nodes, so on the order of thirty nodes are
// awake within any radio disk and roughly T≈3 transactions overlap at a
// receiver — constant across populations from 10^4 to 10^6.
func DefaultMassiveConfig() MassiveConfig {
	return MassiveConfig{
		Seed:         1,
		Populations:  []int{10_000, 100_000, 1_000_000},
		Trials:       1,
		Duration:     10 * time.Second,
		Policies:     []WidthPolicyKind{WidthFixed, WidthAdaptiveTurnover},
		NodesPerTile: 500,
		Range:        10,
		Duty:         mobility.DutyCycle{MeanUp: 200 * time.Millisecond, MeanDown: 9800 * time.Millisecond},
		SendGap:      150 * time.Millisecond,
		Fragments:    4,
		FrameAir:     2 * time.Millisecond,
		FragGap:      time.Millisecond,
		PacketSize:   48,
		FixedBits:    16,
		MinBits:      2,
		MaxBits:      24,
		FrameLoss:    0.01,
		ProbeEvery:   500 * time.Millisecond,
		AuditEvery:   16,
	}
}

// ParsePopulations parses the -nodes flag: a comma-separated list of
// positive node counts.
func ParsePopulations(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("experiment: invalid population %q (want a positive node count)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty population list %q", s)
	}
	return out, nil
}

// Validate rejects configurations the sharded sensor model cannot run.
func (cfg MassiveConfig) Validate() error {
	if len(cfg.Populations) == 0 || cfg.Trials < 1 || len(cfg.Policies) == 0 {
		return fmt.Errorf("experiment: degenerate massive config (populations=%d trials=%d policies=%d)",
			len(cfg.Populations), cfg.Trials, len(cfg.Policies))
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("experiment: massive duration %v must be positive", cfg.Duration)
	}
	if cfg.PacketSize < 1 {
		return fmt.Errorf("experiment: massive packet size %d must be positive", cfg.PacketSize)
	}
	for _, p := range cfg.Policies {
		if p != WidthFixed && p != WidthAdaptiveTurnover {
			return fmt.Errorf("experiment: massive supports policies %q and %q, got %q",
				WidthFixed, WidthAdaptiveTurnover, p)
		}
	}
	for _, n := range cfg.Populations {
		if n < 1 {
			return fmt.Errorf("experiment: massive population %d must be positive", n)
		}
	}
	// The remaining knobs are validated by the sensor model itself.
	return cfg.sensorConfig(1, WidthFixed).Validate()
}

// sensorConfig maps one (population, policy) cell onto the shard model.
func (cfg MassiveConfig) sensorConfig(nodes int, policy WidthPolicyKind) shard.SensorConfig {
	return shard.SensorConfig{
		Nodes:        nodes,
		NodesPerTile: cfg.NodesPerTile,
		Range:        cfg.Range,
		Duty:         cfg.Duty,
		SendGap:      cfg.SendGap,
		Fragments:    cfg.Fragments,
		FrameAir:     cfg.FrameAir,
		FragGap:      cfg.FragGap,
		DataBits:     8 * cfg.PacketSize,
		Adaptive:     policy == WidthAdaptiveTurnover,
		FixedBits:    cfg.FixedBits,
		MinBits:      cfg.MinBits,
		MaxBits:      cfg.MaxBits,
		FrameLoss:    cfg.FrameLoss,
		ProbeEvery:   cfg.ProbeEvery,
		AuditEvery:   cfg.AuditEvery,
	}
}

// MassiveRow is one (population, policy) cell, counters merged over trials
// in trial order. Every field except the Wall* pair is a pure function of
// (config, seed) — identical at every -parallel setting.
type MassiveRow struct {
	Population int
	Policy     WidthPolicyKind
	Tiles      int
	// Counters are the merged per-tile observables.
	Counters shard.Counters
	// Windows and Exchanged come from the shard driver: barrier windows
	// executed and records that crossed tile boundaries.
	Windows   uint64
	Exchanged uint64
	// Wall is total wall-clock across the cell's trials and WallEvents
	// the heap events plus per-receiver verdicts it bought — the
	// events-per-second numerator. Nondeterministic; reported on stderr
	// and excluded from Render/CSV so stdout stays byte-stable.
	Wall       time.Duration
	WallEvents uint64
}

// Label names the cell for error messages.
func (r MassiveRow) Label() string {
	return fmt.Sprintf("n=%d,policy=%s", r.Population, r.Policy)
}

// EventsPerSec is the cell's measured simulation throughput: engine events
// plus reception verdicts per wall-clock second.
func (r MassiveRow) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.WallEvents) / r.Wall.Seconds()
}

// MassiveResult is the full sweep.
type MassiveResult struct {
	Config MassiveConfig
	Rows   []MassiveRow
}

// Massive runs the sweep: population x policy cells, each a region-sharded
// trial at Parallelism workers. Cells run sequentially — a single massive
// trial already saturates the machine through the shard pool.
func Massive(cfg MassiveConfig) (MassiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return MassiveResult{}, err
	}
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	src := xrand.NewSource(cfg.Seed).Child("massive")
	res := MassiveResult{Config: cfg}
	trial := 0
	for _, n := range cfg.Populations {
		for _, policy := range cfg.Policies {
			row := MassiveRow{Population: n, Policy: policy}
			for t := 0; t < cfg.Trials; t++ {
				tsrc := src.Child(strconv.Itoa(n), string(policy), strconv.Itoa(t))
				start := time.Now()
				ctr, stats, tiles, err := RunMassiveTrial(cfg, n, policy, workers, tsrc)
				if err != nil {
					return MassiveResult{}, fmt.Errorf("massive %s trial %d: %w", row.Label(), t, err)
				}
				elapsed := time.Since(start)
				if cfg.Hooks.OnTrialTime != nil {
					cfg.Hooks.OnTrialTime(trial, elapsed)
				}
				trial++
				row.Tiles = tiles
				row.Counters.Add(&ctr)
				row.Windows += stats.Windows
				row.Exchanged += stats.Exchanged
				row.Wall += elapsed
				row.WallEvents += ctr.Events + ctr.Verdicts
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// RunMassiveTrial executes one region-sharded trial and returns its merged
// counters, driver stats and tile count.
func RunMassiveTrial(cfg MassiveConfig, nodes int, policy WidthPolicyKind, workers int, src *xrand.Source) (shard.Counters, shard.RunStats, int, error) {
	cl, err := shard.NewCluster(cfg.sensorConfig(nodes, policy), src)
	if err != nil {
		return shard.Counters{}, shard.RunStats{}, 0, err
	}
	eng := shard.NewEngine(cfg.FrameAir, workers, cl.Regions()...)
	defer eng.Close()
	eng.Router = cl
	eng.OnBarrier = cl.OnBarrier
	eng.Run(cfg.Duration)
	return cl.Counters(), eng.Stats(), cl.Geom().Tiles(), nil
}

// Check fails on any audited safety violation: a sampled receiver that
// completed a reassembly stitched from two transactions, or a sender that
// reused its previous identifier. Like the chaos sweep's oracle gate, the
// CLI turns a non-nil Check into a non-zero exit.
func (res MassiveResult) Check() error {
	for _, r := range res.Rows {
		c := r.Counters
		if c.Misdeliveries > 0 {
			return fmt.Errorf("massive %s: %d audited misdeliveries", r.Label(), c.Misdeliveries)
		}
		if c.FreshnessViolations > 0 {
			return fmt.Errorf("massive %s: %d identifier-freshness violations", r.Label(), c.FreshnessViolations)
		}
	}
	return nil
}

// Render renders the sweep as a table. Wall-clock throughput is
// deliberately absent — see PerfNote — so the table is byte-stable at
// every worker count.
func (res MassiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Massive population: width tracks T, not N (%v x %d trials, %d/tile, duty %v/%v)\n",
		res.Config.Duration, res.Config.Trials, res.Config.NodesPerTile,
		res.Config.Duty.MeanUp, res.Config.Duty.MeanDown)
	fmt.Fprintf(&b, "%10s %-18s %6s %8s %9s %8s %7s %7s %7s %6s %7s %10s\n",
		"nodes", "policy", "tiles", "awake", "offered", "delivery", "collide", "meanT", "eq4H", "achH", "gap", "exchanged")
	for _, r := range res.Rows {
		c := r.Counters
		delivery := 0.0
		if c.TruthPairs > 0 {
			delivery = float64(c.Delivered) / float64(c.TruthPairs)
		}
		fmt.Fprintf(&b, "%10d %-18s %6d %8.0f %9d %8.4f %7.4f %7.2f %7.2f %6.2f %7.2f %10d\n",
			r.Population, r.Policy, r.Tiles, c.MeanAwake(), c.Offered,
			delivery, c.CollisionRate(), c.MeanT(), c.MeanOptH(), c.MeanWidth(), c.MeanGap(),
			r.Exchanged)
	}
	var audited, mis, fresh int64
	for _, r := range res.Rows {
		audited += r.Counters.AuditedDeliveries
		mis += r.Counters.Misdeliveries
		fresh += r.Counters.FreshnessViolations
	}
	fmt.Fprintf(&b, "audit: %d sampled deliveries, %d misdeliveries, %d freshness violations\n",
		audited, mis, fresh)
	return b.String()
}

// PerfNote is the nondeterministic half of the report — wall clock and
// events per second per cell — kept off stdout so the table and CSV stay
// byte-identical across -parallel settings. The CLI prints it to stderr.
func (res MassiveResult) PerfNote() string {
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "massive %s: %d windows, %d events+verdicts in %v (%.3gM events/sec)\n",
			r.Label(), r.Windows, r.WallEvents, r.Wall.Round(time.Millisecond), r.EventsPerSec()/1e6)
	}
	return b.String()
}

// CSV renders the deterministic columns for plotting.
func (res MassiveResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"nodes", "policy", "tiles", "mean_awake", "offered", "records",
		"truth_pairs", "delivered", "delivery", "collision_rate", "conflicts",
		"mean_t", "eq4_h", "achieved_h", "h_gap",
		"windows", "exchanged", "audited", "misdeliveries", "freshness_violations", "trials"})
	for _, r := range res.Rows {
		c := r.Counters
		delivery := 0.0
		if c.TruthPairs > 0 {
			delivery = float64(c.Delivered) / float64(c.TruthPairs)
		}
		_ = w.Write([]string{
			strconv.Itoa(r.Population), string(r.Policy), strconv.Itoa(r.Tiles),
			formatFloat(c.MeanAwake()), strconv.FormatInt(c.Offered, 10),
			strconv.FormatInt(c.Records, 10), strconv.FormatInt(c.TruthPairs, 10),
			strconv.FormatInt(c.Delivered, 10), formatFloat(delivery),
			formatFloat(c.CollisionRate()), strconv.FormatInt(c.Conflicts, 10),
			formatFloat(c.MeanT()), formatFloat(c.MeanOptH()),
			formatFloat(c.MeanWidth()), formatFloat(c.MeanGap()),
			strconv.FormatUint(r.Windows, 10), strconv.FormatUint(r.Exchanged, 10),
			strconv.FormatInt(c.AuditedDeliveries, 10), strconv.FormatInt(c.Misdeliveries, 10),
			strconv.FormatInt(c.FreshnessViolations, 10), strconv.Itoa(res.Config.Trials),
		})
	}
	w.Flush()
	return sb.String()
}
