package experiment

import (
	"fmt"
	"strings"
	"time"

	"retri/internal/core"
	"retri/internal/flood"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/workload"
	"retri/internal/xrand"
)

// FloodConfig parameterizes the flood-suppression ablation: a grid of
// flood routers originating events, where duplicate suppression is keyed
// by ephemeral RETRI identifiers. Too few identifier bits and distinct
// messages suppress one another; enough bits and the flood delivers like
// one keyed by (source, sequence).
type FloodConfig struct {
	Seed uint64
	// Grid is the n of the n×n deployment.
	Grid int
	// Spacing and Range define the unit-disk layout.
	Spacing float64
	Range   float64
	// TTL is the hop scope of each flood.
	TTL int
	// Interval spaces each node's originations.
	Interval time.Duration
	// PayloadSize is the event payload in bytes.
	PayloadSize int
	// IDBits sweeps the dedup-identifier width.
	IDBits []int
	// Duration and Trials shape the measurement.
	Duration time.Duration
	Trials   int
	// Parallelism is the number of trials simulated concurrently; 0 or 1
	// runs them sequentially with identical output.
	Parallelism int
	// Hooks carries progress and timing callbacks to the runner.
	Hooks RunHooks
}

// DefaultFloodConfig floods 6-byte events across a 6×6 grid.
func DefaultFloodConfig() FloodConfig {
	return FloodConfig{
		Seed:        1,
		Grid:        6,
		Spacing:     5,
		Range:       7.5,
		TTL:         8,
		Interval:    4 * time.Second,
		PayloadSize: 6,
		IDBits:      []int{3, 4, 5, 6, 8, 10},
		Duration:    time.Minute,
		Trials:      3,
	}
}

// FloodResult reports mean per-message reach against identifier width.
type FloodResult struct {
	Config FloodConfig
	// Reach maps identifier bits to the mean number of nodes that
	// delivered each originated message.
	Reach *stats.Series
}

// AblationFloodIDBits measures flood reach as the dedup-identifier width
// grows: suppression collisions smother distinct messages at small widths
// and vanish once the pool comfortably exceeds the neighbourhood's
// concurrent flood count.
func AblationFloodIDBits(cfg FloodConfig) (FloodResult, error) {
	if cfg.Grid < 2 || len(cfg.IDBits) == 0 || cfg.Trials < 1 {
		return FloodResult{}, fmt.Errorf("experiment: degenerate flood config %+v", cfg)
	}
	res := FloodResult{Config: cfg, Reach: stats.NewSeries("reach")}
	src := xrand.NewSource(cfg.Seed).Child("ablation-flood")
	type job struct {
		bits int
		src  *xrand.Source
	}
	jobs := make([]job, 0, len(cfg.IDBits)*cfg.Trials)
	for _, bits := range cfg.IDBits {
		for trial := 0; trial < cfg.Trials; trial++ {
			jobs = append(jobs, job{bits, src.Child(fmt.Sprint(bits), fmt.Sprint(trial))})
		}
	}
	reaches, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (float64, error) {
		return runFloodTrial(cfg, jobs[i].bits, jobs[i].src)
	})
	if err != nil {
		return FloodResult{}, err
	}
	for i, reach := range reaches {
		res.Reach.Add(float64(jobs[i].bits), reach)
	}
	return res, nil
}

// floodOriginator adapts a flood router to the workload generator.
type floodOriginator struct {
	rt *flood.Router
}

func (f floodOriginator) SendPacket(p []byte) error { return f.rt.Originate(p) }
func (f floodOriginator) Radio() *radio.Radio       { return f.rt.Radio() }

var _ workload.Driver = floodOriginator{}

func runFloodTrial(cfg FloodConfig, idBits int, src *xrand.Source) (meanReach float64, err error) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(cfg.Range)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("medium"))
	space := core.MustSpace(idBits)
	fcfg := flood.Config{Space: space, TTL: cfg.TTL}

	n := cfg.Grid
	routers := make([]*flood.Router, 0, n*n)
	id := 0
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			nid := radio.NodeID(id)
			id++
			disk.Place(nid, radio.Point{X: float64(col) * cfg.Spacing, Y: float64(row) * cfg.Spacing})
			r := med.MustAttach(nid)
			label := fmt.Sprint(nid)
			sel := core.NewUniformSelector(space, src.Stream("sel", label))
			rt, err := flood.NewRouter(fcfg, eng, r, sel, src.Stream("rng", label))
			if err != nil {
				return 0, err
			}
			routers = append(routers, rt)
			gen := workload.NewPeriodic(eng, floodOriginator{rt: rt}, cfg.PayloadSize,
				cfg.Interval, cfg.Interval/2, src.Stream("wl", label))
			gen.Start(cfg.Duration)
		}
	}

	eng.Run()

	var originated, delivered int64
	for _, rt := range routers {
		st := rt.Stats()
		originated += st.Originated
		delivered += st.Delivered
	}
	if originated == 0 {
		return 0, nil
	}
	return float64(delivered) / float64(originated), nil
}

// Render renders the flood ablation.
func (r FloodResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flood-suppression ablation: %dx%d grid, TTL %d, one %dB event per node per %v\n",
		r.Config.Grid, r.Config.Grid, r.Config.TTL, r.Config.PayloadSize, r.Config.Interval)
	fmt.Fprintf(&b, "%8s %26s\n", "id bits", "mean nodes reached/event")
	for _, p := range r.Reach.Points() {
		fmt.Fprintf(&b, "%8.0f %17.2f ± %6.2f\n", p.X, p.Y.Mean, p.Y.StdDev)
	}
	return b.String()
}
