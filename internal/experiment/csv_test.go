package experiment

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"retri/internal/energy"
	"retri/internal/stats"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestEfficiencyFigureCSV(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, fig.CSV())
	// Header + 5 curves x 32 points.
	if want := 1 + 5*32; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "bits" || rows[0][2] != "efficiency" {
		t.Errorf("header = %v", rows[0])
	}
	seen := make(map[string]bool)
	for _, r := range rows[1:] {
		seen[r[1]] = true
	}
	for _, label := range []string{"AFF T=16", "static 16-bit"} {
		if !seen[label] {
			t.Errorf("missing series %q", label)
		}
	}
}

func TestLoadFigureCSV(t *testing.T) {
	rows := parseCSV(t, Figure3().CSV())
	if len(rows) != 1+2*19 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The undefined static tail must be flagged.
	foundUndefined := false
	for _, r := range rows[1:] {
		if strings.HasPrefix(r[1], "static") && r[3] == "false" {
			foundUndefined = true
		}
	}
	if !foundUndefined {
		t.Error("no undefined static rows in CSV")
	}
}

// summaryOf builds a Summary from samples, for synthetic results.
func summaryOf(vals ...float64) stats.Summary {
	var acc stats.Accumulator
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Summary()
}

// TestAllResultsRenderCSV: every result type the CLI can emit must render
// parseable CSV with a header row — the -format csv contract.
func TestAllResultsRenderCSV(t *testing.T) {
	series := stats.NewSeries("s")
	series.Add(4, 0.25)
	series.Add(8, 0.5)

	sum := summaryOf(0.1, 0.2)
	cases := []struct {
		name   string
		csv    string
		header string
		rows   int
	}{
		{"scaling", ScalingResult{
			Points: []ScalingPoint{{Grid: 4, Nodes: 16, CollisionRate: sum, MeanDensity: sum, StaticBitsNeeded: 4}},
		}.CSV(), "grid", 1},
		{"window", WindowAblationResult{Series: series, Adaptive: sum}.CSV(), "window", 3},
		{"hidden", HiddenTerminalResult{
			FullMesh: map[SelectorKind]stats.Summary{SelUniform: sum, SelListening: sum},
			Shadowed: map[SelectorKind]stats.Summary{SelUniform: sum, SelListening: sum},
			Hidden:   map[SelectorKind]stats.Summary{SelUniform: sum, SelListening: sum},
		}.CSV(), "topology", 6},
		{"mac", MACAblationResult{
			Profiles: []energy.MACProfile{energy.RPCProfile()},
			Schemes:  []Scheme{AFFScheme(9, SelUniform), StaticScheme(16)},
			E: map[string]map[string]float64{energy.RPCProfile().Name: {
				AFFScheme(9, SelUniform).Label(): 0.5, StaticScheme(16).Label(): 0.4,
			}},
		}.CSV(), "mac_profile", 2},
		{"length", LengthAblationResult{Model: 0.2, ModelPoisson: 0.3, Fixed: sum, Mixed: sum}.CSV(), "series", 4},
		{"churn", ChurnAblationResult{
			Lifetimes: []time.Duration{time.Minute},
			Outcomes: map[string][]ChurnOutcome{
				"aff":     {{Scheme: "aff", UsefulBits: 10, OnAirBits: 20}},
				"dynaddr": {{Scheme: "dynaddr", UsefulBits: 10, OnAirBits: 40, ControlBits: 5}},
			},
		}.CSV(), "lifetime", 2},
		{"estimator", EstimatorAblationResult{
			Workloads:  []string{"continuous"},
			EstimatedT: map[string]map[EstimatorKind]stats.Summary{"continuous": {EstEMA: sum, EstInterval: sum}},
			Collision:  map[string]map[EstimatorKind]stats.Summary{"continuous": {EstEMA: sum, EstInterval: sum}},
		}.CSV(), "workload", 2},
		{"flood", FloodResult{Reach: series}.CSV(), "id_bits", 2},
		{"lifetime", LifetimeResult{
			Rows:     []LifetimeRow{{Scheme: AFFScheme(9, SelUniform)}, {Scheme: StaticScheme(16)}},
			Baseline: 1,
		}.CSV(), "scheme", 2},
	}
	for _, tc := range cases {
		rows := parseCSV(t, tc.csv)
		if len(rows) != tc.rows+1 {
			t.Errorf("%s: %d data rows, want %d:\n%s", tc.name, len(rows)-1, tc.rows, tc.csv)
			continue
		}
		if rows[0][0] != tc.header {
			t.Errorf("%s: header starts with %q, want %q", tc.name, rows[0][0], tc.header)
		}
		width := len(rows[0])
		for _, r := range rows[1:] {
			if len(r) != width {
				t.Errorf("%s: ragged row %v (header width %d)", tc.name, r, width)
			}
		}
	}
}

func TestFigure4CSV(t *testing.T) {
	cfg := quickConfig()
	cfg.IDBits = []int{6}
	cfg.Trials = 1
	cfg.Duration = 5 * time.Second
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, res.CSV())
	// Header + 1 model row + 2 selector rows.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	series := map[string]bool{}
	for _, r := range rows[1:] {
		series[r[1]] = true
		if len(r) != 5 {
			t.Fatalf("row width %d: %v", len(r), r)
		}
	}
	for _, want := range []string{"model", "uniform", "listening"} {
		if !series[want] {
			t.Errorf("missing series %q", want)
		}
	}
}
