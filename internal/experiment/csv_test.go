package experiment

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestEfficiencyFigureCSV(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, fig.CSV())
	// Header + 5 curves x 32 points.
	if want := 1 + 5*32; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "bits" || rows[0][2] != "efficiency" {
		t.Errorf("header = %v", rows[0])
	}
	seen := make(map[string]bool)
	for _, r := range rows[1:] {
		seen[r[1]] = true
	}
	for _, label := range []string{"AFF T=16", "static 16-bit"} {
		if !seen[label] {
			t.Errorf("missing series %q", label)
		}
	}
}

func TestLoadFigureCSV(t *testing.T) {
	rows := parseCSV(t, Figure3().CSV())
	if len(rows) != 1+2*19 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The undefined static tail must be flagged.
	foundUndefined := false
	for _, r := range rows[1:] {
		if strings.HasPrefix(r[1], "static") && r[3] == "false" {
			foundUndefined = true
		}
	}
	if !foundUndefined {
		t.Error("no undefined static rows in CSV")
	}
}

func TestFigure4CSV(t *testing.T) {
	cfg := quickConfig()
	cfg.IDBits = []int{6}
	cfg.Trials = 1
	cfg.Duration = 5 * time.Second
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, res.CSV())
	// Header + 1 model row + 2 selector rows.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	series := map[string]bool{}
	for _, r := range rows[1:] {
		series[r[1]] = true
		if len(r) != 5 {
			t.Fatalf("row width %d: %v", len(r), r)
		}
	}
	for _, want := range []string{"model", "uniform", "listening"} {
		if !series[want] {
			t.Errorf("missing series %q", want)
		}
	}
}
