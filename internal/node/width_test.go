package node

import (
	"testing"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/radio"
)

// fixedWidth is a trivial WidthPolicy for tests; the node layer only sees
// the interface.
type fixedWidth int

func (f fixedWidth) Bits() int { return int(f) }

// TestSendPacketAvoidingHonorsWidthPolicy is the regression test for the
// adaptive-width retransmission bug: SendPacketAvoiding used to ignore
// the Width policy and fall back to the full-width codec, so ARQ retries
// silently reverted to wide identifiers. A retry must be encoded at the
// policy's width, and the opaque key it returns must carry that width.
func TestSendPacketAvoidingHonorsWidthPolicy(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	cfg.AdaptiveWidth = true
	d := newAFFNode(t, r, 1, cfg, AFFOptions{Width: fixedWidth(4)})

	packet := make([]byte, 40)
	noID := ^uint64(0) // ARQ's "no previous attempt" sentinel
	prev := noID
	for attempt := 0; attempt < 8; attempt++ {
		key, err := d.SendPacketAvoiding(packet, prev)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		bits, id := aff.SplitWidthKey(key)
		if bits != 4 {
			t.Fatalf("attempt %d drew width %d, want the policy's 4", attempt, bits)
		}
		if id >= 16 {
			t.Fatalf("attempt %d: id %d outside the width-4 pool", attempt, id)
		}
		if key == prev {
			t.Fatalf("attempt %d reused the avoided key %#x", attempt, key)
		}
		prev = key
	}
}

// TestSendPacketAvoidingWithoutPolicy pins the policy-free paths: a
// fixed-width driver returns raw identifiers, and an adaptive driver
// without a Width policy retries at the full space width.
func TestSendPacketAvoidingWithoutPolicy(t *testing.T) {
	r := newRig(t, radio.DefaultParams())

	fixed := newAFFNode(t, r, 1, affConfig(9), AFFOptions{})
	key, err := fixed.SendPacketAvoiding(make([]byte, 20), ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if !core.MustSpace(9).Contains(key) {
		t.Errorf("fixed-width key %#x is not a raw 9-bit identifier", key)
	}

	cfg := affConfig(9)
	cfg.AdaptiveWidth = true
	adaptive := newAFFNode(t, r, 2, cfg, AFFOptions{})
	key, err = adaptive.SendPacketAvoiding(make([]byte, 20), ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if bits, _ := aff.SplitWidthKey(key); bits != 9 {
		t.Errorf("policy-free adaptive retry drew width %d, want the full 9", bits)
	}
}
