package node

import (
	"fmt"

	"retri/internal/radio"
	"retri/internal/staticaddr"
)

// StaticDriver is the statically addressed baseline stack on one radio.
type StaticDriver struct {
	r     *radio.Radio
	frag  *staticaddr.Fragmenter
	reasm *staticaddr.Reassembler

	handler PacketHandler
	sent    int64
}

var _ Driver = (*StaticDriver)(nil)

// NewStatic builds the static stack on r with the node's unique address.
// The radio's handler is taken over by the driver.
func NewStatic(r *radio.Radio, cfg staticaddr.Config, addr uint64) (*StaticDriver, error) {
	if r == nil {
		return nil, errNilRadio
	}
	frag, err := staticaddr.NewFragmenter(cfg, addr)
	if err != nil {
		return nil, err
	}
	d := &StaticDriver{r: r, frag: frag}
	d.reasm = staticaddr.NewReassembler(cfg, r.Now, func(p staticaddr.Packet) {
		if d.handler != nil {
			d.handler(p.Data)
		}
	})
	r.SetHandler(func(f radio.Frame) { d.reasm.Ingest(f.Payload) })
	return d, nil
}

// Reassembler exposes the reassembler for stats.
func (d *StaticDriver) Reassembler() *staticaddr.Reassembler { return d.reasm }

// Addr returns the node's static address.
func (d *StaticDriver) Addr() uint64 { return d.frag.Addr() }

// Radio returns the underlying radio.
func (d *StaticDriver) Radio() *radio.Radio { return d.r }

// SetPacketHandler installs the delivery callback.
func (d *StaticDriver) SetPacketHandler(h PacketHandler) { d.handler = h }

// PacketsSent reports packets accepted for transmission.
func (d *StaticDriver) PacketsSent() int64 { return d.sent }

// PacketsDelivered reports packets delivered by the reassembler.
func (d *StaticDriver) PacketsDelivered() int64 { return d.reasm.Stats().Delivered }

// SendPacket fragments p under (address, next sequence) and queues every
// fragment for broadcast.
func (d *StaticDriver) SendPacket(p []byte) error {
	tx, err := d.frag.Fragment(p)
	if err != nil {
		return err
	}
	for _, fr := range tx.Fragments {
		if err := d.r.Send(fr.Bytes, fr.Bits); err != nil {
			return fmt.Errorf("node: send fragment: %w", err)
		}
	}
	d.sent++
	return nil
}

// Crash models a node failure: radio down (transmit queue dropped),
// partial reassemblies wiped. The fragmenter's sequence counter survives,
// modelling the flash-backed sequence a statically addressed stack must
// keep anyway to avoid reusing (address, sequence) keys after a reboot.
func (d *StaticDriver) Crash() {
	d.r.SetUp(false)
	d.reasm.Reset()
}

// Restart powers the radio back up after a Crash.
func (d *StaticDriver) Restart() {
	d.r.SetUp(true)
}
