// Package node composes a radio with a fragmentation driver, forming one
// sensor node's network stack.
//
// Two drivers are provided, mirroring the paper's comparison:
//
//   - AFFDriver: the address-free stack. It wires the reassembler's
//     listening tap into the identifier selector and density estimator
//     (Section 3.2/5.1), and optionally implements the receiver-driven
//     "identifier collision notification" extension from Section 3.2's
//     footnote.
//   - StaticDriver: the statically addressed baseline stack.
//
// Both expose the same Driver interface so workloads and experiments can
// run against either without caring which.
package node

import (
	"errors"
	"fmt"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/radio"
	"retri/internal/sim"
)

// PacketHandler receives reassembled packets.
type PacketHandler func(data []byte)

// WidthPolicy decides the identifier width for each outgoing transaction.
// adapt.Controller (closed-loop, Eq. 4 set-point) and adapt.Fixed both
// satisfy it; the node layer depends on the interface so it never imports
// the controller.
type WidthPolicy interface {
	// Bits returns the width for the next transaction, in [1, Space.Bits()].
	Bits() int
}

// Driver is the packet-level service both stacks provide.
type Driver interface {
	// SendPacket fragments and queues a packet for broadcast.
	SendPacket(p []byte) error
	// SetPacketHandler installs the delivery callback.
	SetPacketHandler(h PacketHandler)
	// PacketsSent reports packets accepted for transmission.
	PacketsSent() int64
	// PacketsDelivered reports packets this node reassembled and
	// delivered.
	PacketsDelivered() int64
	// Radio exposes the underlying radio (for energy meters and churn).
	Radio() *radio.Radio
}

var errNilRadio = errors.New("node: nil radio")

// SpanSink receives the sender- and receiver-side lifecycle signals the
// span tracer assembles into causal chains (span.Tracer satisfies it).
// Implementations must be passive measurement taps — no randomness, no
// scheduling, no payload mutation — so wiring one cannot perturb a run.
type SpanSink interface {
	// TxOpen fires when a transaction's fragments are queued on the radio,
	// before any of them airs: the identifier draw (tx.ID at tx.IDBits,
	// after tx.Redraws avoid-redraws, by the named strategy) is decided
	// here. key is the transaction's reassembly key — tx.ID in fixed-width
	// mode, the aff.WidthKey composite in adaptive mode.
	TxOpen(sender radio.NodeID, tx aff.Transaction, key uint64, strategy string)
	// RxExpired fires when a receiver's reassembly timeout evicts the
	// partial state held under key.
	RxExpired(receiver radio.NodeID, key uint64)
	// RxEvicted fires when a receiver's MaxPartials cap evicts the
	// partial state held under key — memory-pressure degradation,
	// distinct from the idle timeout RxExpired reports.
	RxEvicted(receiver radio.NodeID, key uint64)
	// RxRejected fires when a receiver discards a transaction: checksum
	// reports a failed verification at completion, otherwise an internal
	// inconsistency (conflict) drop.
	RxRejected(receiver radio.NodeID, key uint64, checksum bool)
	// RxDelivered fires when a receiver's reassembler hands up a verified
	// packet, before OnDeliver and the packet handler.
	RxDelivered(receiver radio.NodeID, p aff.Packet)
}

// FragmentRelay is the multi-hop forwarding service AFFOptions.Relay
// plugs in (flood.Relay satisfies it). WrapOutgoing envelopes one
// outgoing fragment with the hop budget; UnwrapIncoming strips a
// received frame's envelope, schedules any rebroadcast internally, and
// reports whether the inner fragment should be delivered up the local
// stack (false for duplicate copies already heard). Reset wipes the
// duplicate-suppression table — RAM state, gone on a crash.
type FragmentRelay interface {
	WrapOutgoing(payload []byte, bits int) ([]byte, int)
	UnwrapIncoming(f radio.Frame) (inner []byte, deliver bool)
	Reset()
}

// AFFOptions tunes the address-free driver beyond its aff.Config.
type AFFOptions struct {
	// Estimator, when set, is fed every heard identifier and can drive an
	// adaptive listening window. Both density estimators satisfy the
	// interface.
	Estimator density.TEstimator
	// ObserveOwn also feeds the node's own chosen identifiers to the
	// selector and estimator, preventing immediate self-reuse.
	ObserveOwn bool
	// NotifyCollisions enables the Section 3.2 extension: when this
	// node's reassembler detects an identifier conflict it broadcasts a
	// small notification, and senders hearing one treat the identifier as
	// recently used. Enabling it prefixes every frame with one
	// discriminator bit, which is charged to the efficiency accounting
	// like any other header bit.
	NotifyCollisions bool
	// Truth, when set, runs a ground-truth reassembler alongside the one
	// under test (requires cfg.Instrument; Section 5.1 methodology).
	Truth *aff.TruthReassembler
	// Engine, when set, drives reassembly-timeout eviction from engine
	// timers, so an idle node sheds stale partial-packet state instead of
	// retaining it until its next reception. Without it, eviction happens
	// only inside Ingest, exactly as before.
	Engine *sim.Engine
	// Width, when set, chooses a per-transaction identifier width
	// (requires cfg.AdaptiveWidth — the in-band-width wire format). Nil
	// keeps the fixed-width format, bit-for-bit today's behaviour.
	Width WidthPolicy
	// OnDeliver, when set, is invoked with every packet the reassembler
	// under test delivers, before the packet handler. Measurement-harness
	// tap (the oracle's never-misdeliver audit reads the Truth trailer);
	// protocol code must not use it.
	OnDeliver func(p aff.Packet)
	// Span, when set, receives transaction-lifecycle signals for span
	// tracing: every outgoing transaction's identifier draw and this
	// receiver's reassembly expiries, rejections and deliveries. Like
	// OnDeliver it is a passive measurement tap.
	Span SpanSink
	// Relay, when set, extends the stack across multiple hops: outgoing
	// fragments are wrapped in the relay's hop-scope envelope, and
	// received frames pass through its unwrap/dedup/rebroadcast path
	// before reassembly. The envelope costs one byte per frame, charged
	// against the MTU like the collision-notification discriminator.
	// Not combinable with NotifyCollisions (two competing prefixes).
	Relay FragmentRelay
}

// AFFDriver is the address-free fragmentation stack on one radio.
type AFFDriver struct {
	r     *radio.Radio
	frag  *aff.Fragmenter
	reasm *aff.Reassembler
	sel   core.Selector
	opts  AFFOptions

	handler PacketHandler
	sent    int64

	// lastOwnKey is the most recent own-transaction key observed into the
	// estimator (ObserveOwn). A node never hears its own frames, so a
	// turnover-aware estimator can't see its own final fragments; instead
	// the previous own transaction is completed when the next one is sent.
	lastOwnKey uint64
	hasOwnKey  bool

	notifBits int // size of a collision-notification frame, bits

	sweep *sim.Timer // pending reassembly-timeout sweep, when opts.Engine is set
}

var _ Driver = (*AFFDriver)(nil)

// NewAFF builds the address-free stack on r. The selector's space must
// match cfg.Space. The radio's handler is taken over by the driver.
func NewAFF(r *radio.Radio, cfg aff.Config, sel core.Selector, opts AFFOptions) (*AFFDriver, error) {
	if r == nil {
		return nil, errNilRadio
	}
	if opts.Width != nil && !cfg.AdaptiveWidth {
		return nil, errors.New("node: Width policy requires aff.Config.AdaptiveWidth")
	}
	if cfg.AdaptiveWidth && opts.NotifyCollisions {
		// Notification frames carry a raw Space.Bits()-wide identifier;
		// adaptive transactions are keyed by (width, id), which that format
		// cannot express. Nobody has needed the combination yet.
		return nil, errors.New("node: NotifyCollisions is not supported with AdaptiveWidth")
	}
	if opts.Relay != nil && opts.NotifyCollisions {
		return nil, errors.New("node: Relay is not supported with NotifyCollisions")
	}
	if opts.NotifyCollisions {
		// The discriminator bit rides in front of every fragment; the
		// fragmenter must leave it room within the radio MTU.
		if cfg.MTU == 0 {
			cfg.MTU = 27
		}
		cfg.MTU--
	}
	if opts.Relay != nil {
		// The relay envelope rides in front of every fragment.
		if cfg.MTU == 0 {
			cfg.MTU = 27
		}
		cfg.MTU--
	}
	frag, err := aff.NewFragmenter(cfg, sel, uint32(r.ID()))
	if err != nil {
		return nil, err
	}
	d := &AFFDriver{
		r:    r,
		frag: frag,
		sel:  sel,
		opts: opts,
	}
	d.notifBits = 1 + cfg.Space.Bits()
	d.reasm = aff.NewReassembler(cfg, r.Now, func(p aff.Packet) {
		if opts.Span != nil {
			opts.Span.RxDelivered(r.ID(), p)
		}
		if opts.OnDeliver != nil {
			opts.OnDeliver(p)
		}
		if d.handler != nil {
			d.handler(p.Data)
		}
	})
	d.reasm.SetObserver(func(key uint64, intro bool) {
		// The paper's listening window is the most recent 2T
		// *transactions*, so the selector only counts transaction starts;
		// the density estimator keeps identifiers alive on every
		// fragment.
		//
		// The reassembler reports raw identifiers in fixed-width mode and
		// WidthKey composites in adaptive mode; the selector contract
		// (core.Selector) wants the (width, id) pair, so split before
		// observing — feeding composites through Observe would fill the
		// learned state with keys no future draw can ever match. The
		// estimator counts distinct concurrent *transactions*, for which
		// the composite is exactly the right key, so it takes key as is.
		if intro {
			if cfg.AdaptiveWidth {
				sel.ObserveWidth(aff.SplitWidthKey(key))
			} else {
				sel.Observe(key)
			}
		}
		if opts.Estimator != nil {
			opts.Estimator.Observe(key)
		}
	})
	co, isCO := opts.Estimator.(density.CompletionObserver)
	if isCO {
		// Turnover-aware estimators discount an identifier the moment its
		// transaction is known over instead of holding it a full idle gap.
		d.reasm.SetCompleteHandler(co.ObserveComplete)
	}
	if opts.Span != nil || (cfg.MaxPartials > 0 && isCO) {
		// Cap eviction fires onCapEvict then onExpire for the same
		// identifier; the latch below collapses the pair into the one
		// distinct span signal. A turnover estimator also discounts the
		// identifier — its partial state is gone, so holding it active
		// would overcount density exactly when memory is scarcest.
		capEvicting := false
		d.reasm.SetCapEvictHandler(func(id uint64) {
			if isCO {
				co.ObserveComplete(id)
			}
			if opts.Span != nil {
				capEvicting = true
				opts.Span.RxEvicted(r.ID(), id)
			}
		})
		if opts.Span != nil {
			d.reasm.SetExpiryHandler(func(id uint64) {
				if capEvicting {
					capEvicting = false
					return
				}
				opts.Span.RxExpired(r.ID(), id)
			})
		}
	}
	if opts.NotifyCollisions || opts.Span != nil {
		d.reasm.SetConflictHandler(func(id uint64) {
			if opts.Span != nil {
				opts.Span.RxRejected(r.ID(), id, false)
			}
			if opts.NotifyCollisions {
				d.sendNotification(id)
			}
		})
	}
	if opts.Span != nil {
		d.reasm.SetChecksumFailHandler(func(id uint64) { opts.Span.RxRejected(r.ID(), id, true) })
	}
	r.SetHandler(d.onFrame)
	return d, nil
}

// Reassembler exposes the reassembler under test (stats, pending counts).
func (d *AFFDriver) Reassembler() *aff.Reassembler { return d.reasm }

// Selector returns the identifier selector.
func (d *AFFDriver) Selector() core.Selector { return d.sel }

// Radio returns the underlying radio.
func (d *AFFDriver) Radio() *radio.Radio { return d.r }

// SetPacketHandler installs the delivery callback.
func (d *AFFDriver) SetPacketHandler(h PacketHandler) { d.handler = h }

// PacketsSent reports packets accepted for transmission.
func (d *AFFDriver) PacketsSent() int64 { return d.sent }

// PacketsDelivered reports packets delivered by the reassembler under test.
func (d *AFFDriver) PacketsDelivered() int64 { return d.reasm.Stats().Delivered }

// SendPacket fragments p under a fresh RETRI identifier and queues every
// fragment for broadcast. With a Width policy installed, each transaction
// is encoded at the width the policy chooses.
func (d *AFFDriver) SendPacket(p []byte) error {
	var tx aff.Transaction
	var err error
	if d.opts.Width != nil {
		tx, err = d.frag.FragmentWidth(p, d.opts.Width.Bits())
	} else {
		tx, err = d.frag.Fragment(p)
	}
	if err != nil {
		return err
	}
	return d.sendTx(tx)
}

// SendPacketAvoiding fragments p under a fresh identifier guaranteed to
// differ from avoid — the retransmission path: an ARQ layer passes the
// previous attempt's identifier so a retry is, on air, a brand-new
// transaction. It returns the identifier drawn so the caller can avoid it
// on the next retry. Both values live in the driver's reassembly keyspace:
// raw identifiers in fixed-width mode, aff.WidthKey composites in
// adaptive-width mode — callers treat them as opaque.
//
// With a Width policy installed, the retry is encoded at the width the
// policy chooses right now, exactly like a first attempt: a retransmission
// is a brand-new transaction, and an adaptive node must never silently
// fall back to the full-width codec for it.
func (d *AFFDriver) SendPacketAvoiding(p []byte, avoid uint64) (uint64, error) {
	var tx aff.Transaction
	var err error
	if d.opts.Width != nil {
		tx, err = d.frag.FragmentWidthAvoiding(p, d.opts.Width.Bits(), avoid)
	} else {
		tx, err = d.frag.FragmentAvoiding(p, avoid)
	}
	if err != nil {
		return 0, err
	}
	key := tx.ID
	if d.frag.Config().AdaptiveWidth {
		key = aff.WidthKey(tx.IDBits, tx.ID)
	}
	return key, d.sendTx(tx)
}

func (d *AFFDriver) sendTx(tx aff.Transaction) error {
	if d.opts.Span != nil {
		// Announce the transaction before any fragment is queued: the
		// fragments air later (CSMA contention), and the span tracer must
		// already know the draw when the first FrameSent arrives.
		key := tx.ID
		if d.frag.Config().AdaptiveWidth {
			key = aff.WidthKey(tx.IDBits, tx.ID)
		}
		d.opts.Span.TxOpen(d.r.ID(), tx, key, d.sel.Name())
	}
	if d.opts.ObserveOwn {
		// Observe under the same key a receiver would use, so the node's
		// own transactions and overheard ones share one namespace: the
		// selector gets the (width, id) pair per its keyspace contract
		// (in fixed-width mode IDBits is the space width, so this is the
		// plain Observe path), the estimator the composite key.
		key := tx.ID
		if d.frag.Config().AdaptiveWidth {
			key = aff.WidthKey(tx.IDBits, tx.ID)
		}
		d.sel.ObserveWidth(tx.IDBits, tx.ID)
		if d.opts.Estimator != nil {
			if co, ok := d.opts.Estimator.(density.CompletionObserver); ok {
				// Half-duplex: this node never hears its own final fragments,
				// so approximate — enqueueing a new transaction means the
				// previous one has drained from the FIFO transmit queue (or
				// died with the radio). Off by at most the one in-flight
				// transaction, on the conservative (over-estimating) side.
				if d.hasOwnKey {
					co.ObserveComplete(d.lastOwnKey)
				}
				d.lastOwnKey, d.hasOwnKey = key, true
			}
			d.opts.Estimator.Observe(key)
		}
	}
	for _, fr := range tx.Fragments {
		payload, bits := fr.Bytes, fr.Bits
		if d.opts.NotifyCollisions {
			payload, bits = wrapDiscriminated(discFragment, payload, bits)
		}
		if d.opts.Relay != nil {
			payload, bits = d.opts.Relay.WrapOutgoing(payload, bits)
		}
		if err := d.r.Send(payload, bits); err != nil {
			return fmt.Errorf("node: send fragment: %w", err)
		}
	}
	d.sent++
	return nil
}

// Crash models a node failure: the radio goes down (dropping its transmit
// queue) and all RAM-resident protocol state — partial reassemblies, the
// selector's listening window, the density estimator — is wiped.
func (d *AFFDriver) Crash() {
	d.r.SetUp(false)
	d.reasm.Reset()
	if rs, ok := d.sel.(interface{ Reset() }); ok {
		rs.Reset()
	}
	if rs, ok := d.opts.Estimator.(interface{ Reset() }); ok {
		rs.Reset()
	}
	if rs, ok := d.opts.Width.(interface{ Reset() }); ok {
		rs.Reset()
	}
	if d.opts.Relay != nil {
		d.opts.Relay.Reset()
	}
	d.hasOwnKey = false
	if d.sweep != nil {
		d.sweep.Cancel()
		d.sweep = nil
	}
}

// Restart powers the radio back up after a Crash. State stays empty; the
// node relearns the channel by listening, exactly like a fresh boot.
func (d *AFFDriver) Restart() {
	d.r.SetUp(true)
}

// armSweep schedules the next timeout sweep from the reassembler's expiry
// queue. One-shot and self-re-arming only while partial state exists, so
// an otherwise-finished simulation still terminates.
func (d *AFFDriver) armSweep() {
	if d.opts.Engine == nil {
		return
	}
	next, ok := d.reasm.NextExpiry()
	if !ok {
		return
	}
	// Expiry requires strictly exceeding the timeout, so fire 1ns after.
	at := next + 1
	if d.sweep != nil && !d.sweep.Stopped() {
		return // head activity times are monotone: the pending sweep is due first
	}
	d.sweep = d.opts.Engine.ScheduleAt(at, func() {
		d.reasm.Sweep()
		d.armSweep()
	})
}

// onFrame dispatches a received frame to the reassembler(s), unwrapping the
// discriminator bit when the notification extension is active.
func (d *AFFDriver) onFrame(f radio.Frame) {
	payload := f.Payload
	if d.opts.Relay != nil {
		inner, deliver := d.opts.Relay.UnwrapIncoming(f)
		if !deliver {
			return
		}
		payload = inner
	}
	if d.opts.NotifyCollisions {
		kind, inner, ok := unwrapDiscriminated(payload)
		if !ok {
			return
		}
		if kind == discNotification {
			if id, ok := decodeNotification(inner, d.frag.Config().Space.Bits()); ok {
				// Treat the collided identifier as recently used.
				d.sel.Observe(id)
			}
			return
		}
		payload = inner
	}
	d.reasm.Ingest(payload)
	if d.opts.Truth != nil {
		d.opts.Truth.Ingest(payload)
	}
	d.armSweep()
}

// sendNotification broadcasts a collision notification for id.
func (d *AFFDriver) sendNotification(id uint64) {
	payload, bits := encodeNotification(id, d.frag.Config().Space.Bits())
	// Best effort: a notification that cannot be sent (radio down) is
	// simply lost, like any other heuristic signal.
	_ = d.r.Send(payload, bits)
}
