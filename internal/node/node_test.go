package node

import (
	"bytes"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
	"retri/internal/xrand"
)

// rig is a small test network: one engine, one medium, n radios.
type rig struct {
	eng *sim.Engine
	med *radio.Medium
}

func newRig(t *testing.T, p radio.Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	rng := xrand.NewSource(11).Stream("node-test", t.Name())
	return &rig{eng: eng, med: radio.NewMedium(eng, radio.FullMesh{}, p, rng)}
}

func affConfig(bits int) aff.Config {
	return aff.Config{Space: core.MustSpace(bits), MTU: 27}
}

func newAFFNode(t *testing.T, r *rig, id radio.NodeID, cfg aff.Config, opts AFFOptions) *AFFDriver {
	t.Helper()
	rad := r.med.MustAttach(id)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(uint64(id)).Stream("sel", t.Name()))
	d, err := NewAFF(rad, cfg, sel, opts)
	if err != nil {
		t.Fatalf("NewAFF(%d): %v", id, err)
	}
	return d
}

func TestAFFEndToEnd(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})
	rx := newAFFNode(t, r, 2, cfg, AFFOptions{})
	var got [][]byte
	rx.SetPacketHandler(func(p []byte) { got = append(got, p) })

	packet := make([]byte, 80)
	for i := range packet {
		packet[i] = byte(i)
	}
	if err := tx.SendPacket(packet); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if len(got) != 1 || !bytes.Equal(got[0], packet) {
		t.Fatalf("received %d packets, want the original back", len(got))
	}
	if tx.PacketsSent() != 1 {
		t.Errorf("PacketsSent = %d, want 1", tx.PacketsSent())
	}
	if rx.PacketsDelivered() != 1 {
		t.Errorf("PacketsDelivered = %d, want 1", rx.PacketsDelivered())
	}
}

func TestStaticEndToEnd(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := staticaddr.Config{AddrBits: 16, MTU: 27}
	radA := r.med.MustAttach(1)
	radB := r.med.MustAttach(2)
	tx, err := NewStatic(radA, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewStatic(radB, cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	rx.SetPacketHandler(func(p []byte) { got = append(got, p) })

	packet := []byte("static baseline packet for comparison purposes")
	if err := tx.SendPacket(packet); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if len(got) != 1 || !bytes.Equal(got[0], packet) {
		t.Fatal("static round trip failed")
	}
	if tx.Addr() != 100 {
		t.Errorf("Addr() = %d", tx.Addr())
	}
	if tx.PacketsSent() != 1 || rx.PacketsDelivered() != 1 {
		t.Error("packet counters wrong")
	}
}

func TestAFFListeningTapFeedsSelector(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})

	rad := r.med.MustAttach(2)
	listenSel := core.NewListeningSelector(cfg.Space, xrand.NewSource(2).Stream("ls"), core.FixedWindow(10))
	rx, err := NewAFF(rad, cfg, listenSel, AFFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = rx

	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if listenSel.Recent() == 0 {
		t.Error("receiver's listening selector observed nothing")
	}
}

func TestAFFEstimatorWired(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})

	rad := r.med.MustAttach(2)
	est := density.New(time.Second, 1, r.eng.Now)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(3).Stream("s"))
	if _, err := NewAFF(rad, cfg, sel, AFFOptions{Estimator: est}); err != nil {
		t.Fatal(err)
	}

	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if est.Active() == 0 && est.Estimate() <= 1 {
		// At least one transaction should have been observed.
		t.Error("estimator observed no transactions")
	}
}

func TestAFFObserveOwn(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	rad := r.med.MustAttach(1)
	sel := core.NewListeningSelector(cfg.Space, xrand.NewSource(4).Stream("own"), core.FixedWindow(10))
	d, err := NewAFF(rad, cfg, sel, AFFOptions{ObserveOwn: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SendPacket([]byte("mine")); err != nil {
		t.Fatal(err)
	}
	if sel.Recent() != 1 {
		t.Errorf("own transaction not observed: window holds %d", sel.Recent())
	}
}

func TestAFFInstrumentedTruthSideChannel(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	cfg.Instrument = true
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})

	rad := r.med.MustAttach(2)
	truth := aff.NewTruthReassembler(cfg, r.eng.Now)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(5).Stream("tr"))
	rx, err := NewAFF(rad, cfg, sel, AFFOptions{Truth: truth})
	if err != nil {
		t.Fatal(err)
	}

	if err := tx.SendPacket(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if truth.Stats().Delivered != 1 {
		t.Errorf("truth Delivered = %d, want 1", truth.Stats().Delivered)
	}
	if rx.PacketsDelivered() != 1 {
		t.Errorf("under-test Delivered = %d, want 1", rx.PacketsDelivered())
	}
}

func TestTemporalReuseOfIdentifier(t *testing.T) {
	// Two senders forced onto the SAME identifier but whose transactions
	// do not overlap in time (CSMA serializes them): both packets must be
	// delivered. "Nearby nodes can use the same identifier at different
	// times" (Section 3.2).
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(4)
	radA := r.med.MustAttach(1)
	dA, err := NewAFF(radA, cfg, core.NewSequentialSelector(cfg.Space, 7), AFFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	radB := r.med.MustAttach(2)
	dB, err := NewAFF(radB, cfg, core.NewSequentialSelector(cfg.Space, 7), AFFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink := newAFFNode(t, r, 3, cfg, AFFOptions{})
	delivered := 0
	sink.SetPacketHandler(func([]byte) { delivered++ })

	if err := dA.SendPacket(bytes.Repeat([]byte{0xA}, 60)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run() // A's transaction completes before B's begins
	if err := dB.SendPacket(bytes.Repeat([]byte{0xB}, 60)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if delivered != 2 {
		t.Errorf("delivered %d packets, want 2 (temporal identifier reuse)", delivered)
	}
	if c := sink.Reassembler().Stats().Conflicts; c != 0 {
		t.Errorf("conflicts = %d, want 0 for non-overlapping reuse", c)
	}
}

func TestCollisionNotificationRoundTrip(t *testing.T) {
	// A receiver detecting an identifier conflict broadcasts a
	// notification; a listening node hearing it avoids the identifier
	// (Section 3.2: "the receiver could try to send an explicit
	// 'identifier collision notification' to the two senders").
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(4)

	// A: the receiver that will detect the conflict and notify.
	radA := r.med.MustAttach(1)
	selA := core.NewUniformSelector(cfg.Space, xrand.NewSource(6).Stream("a"))
	dA, err := NewAFF(radA, cfg, selA, AFFOptions{NotifyCollisions: true})
	if err != nil {
		t.Fatal(err)
	}
	// D: a bystander with a listening selector; it must learn about the
	// collision from A's notification alone.
	radD := r.med.MustAttach(2)
	selD := core.NewListeningSelector(cfg.Space, xrand.NewSource(7).Stream("d"), core.FixedWindow(8))
	if _, err := NewAFF(radD, cfg, selD, AFFOptions{NotifyCollisions: true}); err != nil {
		t.Fatal(err)
	}

	// Two conflicting transactions under identifier 7, interleaved as a
	// hidden-terminal pair would produce them. They are injected straight
	// into A's frame path to control the interleaving precisely.
	mk := func(fill byte, truthNode uint32) [][]byte {
		fcfg := cfg
		fcfg.MTU = 26 // leave room for the discriminator bit
		fr, err := aff.NewFragmenter(fcfg, core.NewSequentialSelector(cfg.Space, 7), truthNode)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := fr.Fragment(bytes.Repeat([]byte{fill}, 60))
		if err != nil {
			t.Fatal(err)
		}
		frames := make([][]byte, len(tx.Fragments))
		for i, f := range tx.Fragments {
			frames[i], _ = wrapDiscriminated(discFragment, f.Bytes, f.Bits)
		}
		return frames
	}
	fa, fb := mk(0xAA, 10), mk(0xBB, 11)
	for i := range fa {
		dA.onFrame(radio.Frame{From: 10, Payload: fa[i]})
		dA.onFrame(radio.Frame{From: 11, Payload: fb[i]})
	}
	if dA.Reassembler().Stats().Conflicts == 0 {
		t.Fatal("receiver did not detect the conflict")
	}
	// Let A's notification frame propagate to D.
	r.eng.Run()

	if selD.Recent() == 0 {
		t.Fatal("bystander heard no notification")
	}
	for i := 0; i < 50; i++ {
		if id := selD.Next(); id == 7 {
			t.Fatal("bystander still selects the collided identifier")
		}
	}
}

func TestNotificationCodecRoundTrip(t *testing.T) {
	for _, idBits := range []int{1, 4, 9, 16, 32} {
		id := uint64(1)<<uint(idBits) - 1
		buf, bits := encodeNotification(id, idBits)
		if bits != 1+idBits {
			t.Errorf("idBits=%d: bits = %d, want %d", idBits, bits, 1+idBits)
		}
		kind, inner, ok := unwrapDiscriminated(buf)
		if !ok || kind != discNotification {
			t.Fatalf("idBits=%d: unwrap failed (kind=%d ok=%v)", idBits, kind, ok)
		}
		got, ok := decodeNotification(inner, idBits)
		if !ok || got != id {
			t.Errorf("idBits=%d: decoded %d, want %d", idBits, got, id)
		}
	}
}

func TestWrapUnwrapFragment(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	wrapped, bits := wrapDiscriminated(discFragment, payload, 8*len(payload))
	if bits != 1+40 {
		t.Errorf("bits = %d, want 41", bits)
	}
	kind, inner, ok := unwrapDiscriminated(wrapped)
	if !ok || kind != discFragment || !bytes.Equal(inner, payload) {
		t.Errorf("unwrap = (%d, %v, %v)", kind, inner, ok)
	}
}

func TestUnwrapEmptyFrame(t *testing.T) {
	if _, _, ok := unwrapDiscriminated(nil); ok {
		t.Error("unwrap of empty frame succeeded")
	}
}

func TestNewAFFNilRadio(t *testing.T) {
	cfg := affConfig(9)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(1).Stream("n"))
	if _, err := NewAFF(nil, cfg, sel, AFFOptions{}); err == nil {
		t.Error("nil radio accepted")
	}
	if _, err := NewStatic(nil, staticaddr.Config{AddrBits: 16}, 1); err == nil {
		t.Error("nil radio accepted by NewStatic")
	}
}

func TestManySendersMostlyDeliveredWithBigIDs(t *testing.T) {
	// With a 16-bit space and 6 senders, identifier collisions are
	// vanishingly rare. RF collisions in the contention MAC still cost
	// some frames (no retransmission), so "most" packets arrive — and
	// none of the losses may be identifier conflicts.
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(16)
	sink := newAFFNode(t, r, 99, cfg, AFFOptions{})
	delivered := 0
	sink.SetPacketHandler(func([]byte) { delivered++ })

	senders := make([]*AFFDriver, 6)
	for i := range senders {
		senders[i] = newAFFNode(t, r, radio.NodeID(i+1), cfg, AFFOptions{})
	}
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for i, s := range senders {
			pkt := bytes.Repeat([]byte{byte(i + 1)}, 60)
			pkt[0] = byte(round)
			if err := s.SendPacket(pkt); err != nil {
				t.Fatal(err)
			}
		}
		r.eng.Run()
	}
	offered := rounds * len(senders)
	if delivered < offered/2 {
		t.Errorf("sink delivered %d of %d packets, want at least half", delivered, offered)
	}
	if c := sink.Reassembler().Stats().Conflicts; c != 0 {
		t.Errorf("identifier conflicts = %d, want 0 in a 16-bit space", c)
	}
}
