package node

import (
	"errors"
	"testing"

	"retri/internal/core"
	"retri/internal/radio"
	"retri/internal/staticaddr"
	"retri/internal/xrand"
)

func TestAFFAccessors(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	d := newAFFNode(t, r, 1, cfg, AFFOptions{})
	if d.Selector() == nil {
		t.Error("Selector() = nil")
	}
	if d.Radio() == nil || d.Radio().ID() != 1 {
		t.Error("Radio() wrong")
	}
	if d.Reassembler() == nil {
		t.Error("Reassembler() = nil")
	}
}

func TestStaticAccessors(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	rad := r.med.MustAttach(7)
	d, err := NewStatic(rad, staticaddr.Config{AddrBits: 16, MTU: 27}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Radio() == nil || d.Radio().ID() != 7 {
		t.Error("Radio() wrong")
	}
	if d.Reassembler() == nil {
		t.Error("Reassembler() = nil")
	}
}

func TestAFFSendPacketErrors(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	cfg := affConfig(9)
	d := newAFFNode(t, r, 1, cfg, AFFOptions{})
	// Fragmenter-level failure: empty packet.
	if err := d.SendPacket(nil); err == nil {
		t.Error("empty packet accepted")
	}
	// Radio-level failure: radio down.
	d.Radio().SetUp(false)
	if err := d.SendPacket([]byte("x")); !errors.Is(err, radio.ErrRadioDown) {
		t.Errorf("down radio err = %v, want ErrRadioDown", err)
	}
	if d.PacketsSent() != 0 {
		t.Errorf("PacketsSent = %d after failures, want 0", d.PacketsSent())
	}
}

func TestStaticSendPacketErrors(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	rad := r.med.MustAttach(1)
	d, err := NewStatic(rad, staticaddr.Config{AddrBits: 16, MTU: 27}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SendPacket(nil); err == nil {
		t.Error("empty packet accepted")
	}
	d.Radio().SetUp(false)
	if err := d.SendPacket([]byte("x")); !errors.Is(err, radio.ErrRadioDown) {
		t.Errorf("down radio err = %v, want ErrRadioDown", err)
	}
}

func TestNewAFFBadConfig(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	rad := r.med.MustAttach(1)
	// Selector space mismatch surfaces from the fragmenter.
	cfg := affConfig(9)
	badSel := core.NewUniformSelector(core.MustSpace(4), xrand.NewSource(1).Stream("bad"))
	if _, err := NewAFF(rad, cfg, badSel, AFFOptions{}); err == nil {
		t.Error("space mismatch accepted")
	}
}

func TestNewStaticBadConfig(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	rad := r.med.MustAttach(1)
	if _, err := NewStatic(rad, staticaddr.Config{AddrBits: 4, MTU: 27}, 99); err == nil {
		t.Error("address wider than space accepted")
	}
}

func TestNotifyCollisionsDefaultMTU(t *testing.T) {
	// NotifyCollisions with a zero-MTU config must apply the default
	// before reserving the discriminator byte.
	r := newRig(t, radio.DefaultParams())
	rad := r.med.MustAttach(1)
	cfg := affConfig(9)
	cfg.MTU = 0
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(5).Stream("mtu"))
	d, err := NewAFF(rad, cfg, sel, AFFOptions{NotifyCollisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SendPacket(make([]byte, 200)); err != nil {
		t.Fatalf("full-size packet with notification framing: %v", err)
	}
	r.eng.Run()
}
