package node

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/faults"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/staticaddr"
	"retri/internal/xrand"
)

// dropNth loses exactly the n-th frame (1-based) sent by one node, a
// deterministic way to strand a partial reassembly at the receiver.
type dropNth struct {
	from  radio.NodeID
	n     int
	count int
}

func (d *dropNth) Drop(from, _ radio.NodeID, _ time.Duration) bool {
	if from != d.from {
		return false
	}
	d.count++
	return d.count == d.n
}

// runIdleReceiver delivers 4 of a transaction's 5 frames and then lets the
// network go silent, returning the receiver's pending-state count and
// timeout tally after the run.
func runIdleReceiver(t *testing.T, withEngine bool) (pending int, timeouts int64) {
	t.Helper()
	p := radio.DefaultParams()
	p.Loss = &dropNth{from: 1, n: 5}
	r := newRig(t, p)
	cfg := affConfig(9)
	cfg.ReassemblyTimeout = time.Second
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})
	opts := AFFOptions{}
	if withEngine {
		opts.Engine = r.eng
	}
	rx := newAFFNode(t, r, 2, cfg, opts)

	if err := tx.SendPacket(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	return rx.Reassembler().PendingCount(), rx.Reassembler().Stats().Timeouts
}

// TestEngineSweepShedsIdleState is the regression test for reassembly
// timeouts on idle nodes: with AFFOptions.Engine wired, a node that hears a
// partial transaction and then nothing at all must still evict the stale
// state from an engine timer.
func TestEngineSweepShedsIdleState(t *testing.T) {
	pending, timeouts := runIdleReceiver(t, true)
	if pending != 0 || timeouts != 1 {
		t.Errorf("engine-driven sweep left pending=%d timeouts=%d, want 0/1", pending, timeouts)
	}
	// Control: without the engine wiring the stale state survives the run,
	// which is exactly the leak the sweep exists to fix.
	pending, timeouts = runIdleReceiver(t, false)
	if pending != 1 || timeouts != 0 {
		t.Errorf("control run shed state anyway (pending=%d timeouts=%d); test is vacuous", pending, timeouts)
	}
}

func TestAFFCrashWipesSoftState(t *testing.T) {
	p := radio.DefaultParams()
	p.Loss = &dropNth{from: 1, n: 5}
	r := newRig(t, p)
	cfg := affConfig(9)
	cfg.ReassemblyTimeout = time.Minute
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})

	rad := r.med.MustAttach(2)
	sel := core.NewListeningSelector(cfg.Space, xrand.NewSource(2).Stream("crash"), core.FixedWindow(10))
	rx, err := NewAFF(rad, cfg, sel, AFFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rx.SetPacketHandler(func([]byte) { delivered++ })

	if err := tx.SendPacket(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if rx.Reassembler().PendingCount() != 1 || sel.Recent() == 0 {
		t.Fatalf("scenario broken: pending=%d recent=%d, want a stranded partial and a warm window",
			rx.Reassembler().PendingCount(), sel.Recent())
	}

	rx.Crash()
	if rx.Reassembler().PendingCount() != 0 {
		t.Error("crash left partial reassemblies")
	}
	if sel.Recent() != 0 {
		t.Error("crash left the listening window populated")
	}

	// Down: traffic passes the node by.
	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if delivered != 0 {
		t.Errorf("crashed node delivered %d packets", delivered)
	}

	// Restarted: the node rejoins with empty state and receives normally.
	rx.Restart()
	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if delivered != 1 {
		t.Errorf("restarted node delivered %d packets, want 1", delivered)
	}
}

func TestStaticCrashWipesReassembly(t *testing.T) {
	p := radio.DefaultParams()
	p.Loss = &dropNth{from: 1, n: 4}
	r := newRig(t, p)
	cfg := staticaddr.Config{AddrBits: 16, MTU: 27, ReassemblyTimeout: time.Minute}
	tx, err := NewStatic(r.med.MustAttach(1), cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewStatic(r.med.MustAttach(2), cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rx.SetPacketHandler(func([]byte) { delivered++ })

	if err := tx.SendPacket(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	rx.Crash()
	if got := rx.Reassembler().Stats().Delivered; got != 0 || delivered != 0 {
		t.Fatalf("partial packet was delivered (%d/%d)", got, delivered)
	}

	// A crashed sender cannot transmit; after restart both ends work again.
	tx.Crash()
	if err := tx.SendPacket(make([]byte, 40)); err == nil {
		t.Error("crashed sender accepted a packet")
	}
	tx.Restart()
	rx.Restart()
	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if delivered != 1 {
		t.Errorf("delivered %d after restart, want 1", delivered)
	}
}

// fateTap invokes fn on every per-receiver reception verdict.
type fateTap struct {
	fn func(to radio.NodeID, f radio.Frame, fate radio.Fate)
}

func (ft *fateTap) FrameSent(radio.Frame) {}
func (ft *fateTap) FrameFate(to radio.NodeID, f radio.Frame, fate radio.Fate) {
	ft.fn(to, f, fate)
}

// TestCrashDuringPartialReassemblyAuditsClean crashes a receiver in the
// middle of reassembling a packet, with the engine-driven expiry sweep
// armed and the omniscient oracle watching. The crash must wipe the RAM
// partial state and its expiry-queue timer together — no timeout or
// eviction counter may fire for state that died with the node — and the
// oracle must see no conservation or freshness violation from the
// half-received transaction.
func TestCrashDuringPartialReassemblyAuditsClean(t *testing.T) {
	p := radio.DefaultParams()
	loss := &dropNth{from: 1, n: 5}
	p.Loss = loss
	r := newRig(t, p)
	cfg := affConfig(9)
	cfg.Instrument = true
	cfg.ReassemblyTimeout = 500 * time.Millisecond

	orc, err := oracle.New(oracle.Config{AFF: cfg, Topo: radio.FullMesh{}, Now: r.eng.Now})
	if err != nil {
		t.Fatal(err)
	}
	r.med.SetFrameObserver(orc)

	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})
	delivered := 0
	rxOpts := AFFOptions{Engine: r.eng}
	rxOpts.OnDeliver = func(pkt aff.Packet) {
		delivered++
		orc.VerifyDelivered(2, pkt)
	}
	rx := newAFFNode(t, r, 2, cfg, rxOpts)

	// Crash the receiver the moment it holds partial state, i.e. from
	// within the run, mid-transaction.
	crashed := false
	r.med.SetFateObserver(&fateTap{fn: func(to radio.NodeID, _ radio.Frame, fate radio.Fate) {
		if to == 2 && fate == radio.FateDelivered && !crashed && rx.Reassembler().PendingCount() > 0 {
			crashed = true
			r.eng.Schedule(0, rx.Crash)
		}
	}})

	if err := tx.SendPacket(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !crashed {
		t.Fatal("scenario broken: the receiver never held partial state")
	}
	if rx.Reassembler().PendingCount() != 0 {
		t.Error("crash left partial reassemblies")
	}
	st := rx.Reassembler().Stats()
	if st.Timeouts != 0 || st.CapEvictions != 0 {
		t.Errorf("wipe was miscounted: timeouts=%d evictions=%d, want 0/0 — "+
			"a crash is neither an idle expiry nor a cap eviction", st.Timeouts, st.CapEvictions)
	}
	if delivered != 0 {
		t.Fatalf("half-received packet was delivered %d times", delivered)
	}

	// The node rejoins with empty state and the next transaction flows
	// end to end; the stale expiry timer from before the crash must not
	// resurface against the new state. (The loss model is disarmed — a
	// down radio is never consulted for drops, so its frame count did not
	// advance while the node was dead.)
	loss.n = 0
	rx.Restart()
	if err := tx.SendPacket(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if delivered != 1 {
		t.Errorf("restarted node delivered %d packets, want 1", delivered)
	}
	if st := rx.Reassembler().Stats(); st.Timeouts != 0 || st.CapEvictions != 0 {
		t.Errorf("post-restart counters: timeouts=%d evictions=%d, want 0/0", st.Timeouts, st.CapEvictions)
	}
	rep := orc.Report()
	if err := rep.Check(); err != nil {
		t.Errorf("oracle audit after crash/restart: %v", err)
	}
	if rep.PacketsAudited == 0 || rep.Unaudited != 0 {
		t.Errorf("audit coverage: audited=%d unaudited=%d, want the delivery audited", rep.PacketsAudited, rep.Unaudited)
	}
}

// TestCorruptionNeverMisdelivers is the end-to-end corruption-safety
// guarantee: with a bit-flipping channel, every packet the stack hands up
// must be byte-identical to one that was sent — corruption may cost
// deliveries (checksum drops) but can never forge one.
func TestCorruptionNeverMisdelivers(t *testing.T) {
	p := radio.DefaultParams()
	flipper := faults.NewBitFlipper(0.3, xrand.NewSource(31).Stream("flip", t.Name()))
	p.Corrupt = flipper
	r := newRig(t, p)
	cfg := affConfig(16)
	tx := newAFFNode(t, r, 1, cfg, AFFOptions{})
	rx := newAFFNode(t, r, 2, cfg, AFFOptions{})

	sent := make(map[string]bool)
	delivered := 0
	rx.SetPacketHandler(func(pl []byte) {
		delivered++
		if !sent[string(pl)] {
			t.Errorf("delivered a payload that was never sent: %x", pl)
		}
	})

	const n = 150
	for i := 0; i < n; i++ {
		pkt := bytes.Repeat([]byte{byte(i)}, 60)
		copy(pkt, fmt.Sprintf("packet-%03d", i))
		sent[string(pkt)] = true
		if err := tx.SendPacket(pkt); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
	}

	if flipper.Flips() == 0 {
		t.Fatal("corrupter never fired; test is vacuous")
	}
	if got := r.med.Counters().Corrupted; got != flipper.Flips() {
		t.Errorf("medium counted %d corrupted deliveries, corrupter reports %d", got, flipper.Flips())
	}
	st := rx.Reassembler().Stats()
	if st.ChecksumFailures+st.Conflicts+st.Malformed == 0 {
		t.Error("no corruption was caught by the checksum/consistency layer")
	}
	if delivered == 0 {
		t.Error("nothing delivered at all; channel unusable")
	}
	if delivered >= n {
		t.Errorf("all %d packets survived a 30%% bit-flip channel; corruption not applied", n)
	}
}
