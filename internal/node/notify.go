package node

import "retri/internal/bitio"

// Frame discriminator values used only when the collision-notification
// extension is enabled. One bit distinguishes ordinary AFF fragments from
// notification frames; that bit is real header overhead and is counted as
// such.
const (
	discFragment     = 0
	discNotification = 1
)

// wrapDiscriminated prefixes a frame with the 1-bit discriminator.
func wrapDiscriminated(kind uint64, payload []byte, bits int) ([]byte, int) {
	w := bitio.NewWriter()
	// Widths here are constants; writes cannot fail.
	_ = w.WriteBits(kind, 1)
	w.WriteBytes(payload)
	return w.Bytes(), 1 + bits
}

// unwrapDiscriminated strips the discriminator bit, returning the kind and
// the inner frame bytes.
func unwrapDiscriminated(p []byte) (kind uint64, inner []byte, ok bool) {
	r := bitio.NewReader(p)
	kind, err := r.ReadBits(1)
	if err != nil {
		return 0, nil, false
	}
	inner = make([]byte, r.Remaining()/8)
	if err := r.ReadBytes(inner); err != nil {
		return 0, nil, false
	}
	return kind, inner, true
}

// encodeNotification builds a collision-notification frame: the
// discriminator bit followed by a byte-aligned body carrying the collided
// identifier. The body is byte-aligned so that unwrapDiscriminated's
// byte-shifted extraction preserves it exactly.
func encodeNotification(id uint64, idBits int) ([]byte, int) {
	body := bitio.NewWriter()
	_ = body.WriteBits(id, idBits)
	body.Align()
	return wrapDiscriminated(discNotification, body.Bytes(), idBits)
}

// decodeNotification extracts the identifier from an unwrapped
// notification body. The discriminator bit has already been consumed by
// unwrapDiscriminated, which byte-shifted the remainder, so the identifier
// starts at bit 0 of inner.
func decodeNotification(inner []byte, idBits int) (uint64, bool) {
	r := bitio.NewReader(inner)
	id, err := r.ReadBits(idBits)
	if err != nil {
		return 0, false
	}
	return id, true
}
