package shard

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"time"

	"retri/internal/core"
	"retri/internal/mobility"
	"retri/internal/model"
	"retri/internal/xrand"
)

// This file is the massive-population sensor model: a struct-of-arrays
// tile that holds thousands of mostly-asleep duty-cycled nodes with no
// per-node objects, closures or goroutines. It trades the full node/radio
// stack for the machine-type random-access regime the sweep studies —
// sparse awake fraction, open-loop ALOHA senders, fragments identified
// only by an ephemeral (width, id) pair — while keeping the quantities the
// paper cares about exact: ground-truth reception per fragment, AFF
// reassembly keyed by identifier alone, identifier-collision conflicts,
// and Eq. 4's optimal width against the measured concurrency T.
//
// Every mutation happens inside the owning tile's Advance or Settle;
// randomness is one labelled stream per tile consumed only in Advance;
// per-receiver frame loss is counter-hashed from (seed, record seq,
// receiver), so Settle never touches the stream. That is what makes a
// cluster byte-stable at any worker count.

// SensorConfig parameterises a massive-population trial.
type SensorConfig struct {
	// Nodes is the total population; NodesPerTile sets the shard grain
	// (tiles = ceil(Nodes/NodesPerTile)), so world area grows with Nodes
	// and awake density stays constant across populations.
	Nodes        int
	NodesPerTile int
	// Range is the radio range; tiles are Range-sided squares.
	Range float64
	// Duty is the sleep/wake schedule; nodes start in the stationary mix.
	Duty mobility.DutyCycle
	// SendGap is the mean exponential gap between transactions while awake.
	SendGap time.Duration
	// Fragments per transaction (1..16); FrameAir is one fragment's
	// airtime and must equal the driver's lookahead; FragGap bounds the
	// uniform extra gap between fragments.
	Fragments int
	FrameAir  time.Duration
	FragGap   time.Duration
	// DataBits sizes the payload for Eq. 4's width optimum.
	DataBits int
	// Width policy: Adaptive picks model.OptimalBits for the node's live
	// partial-set estimate of T, clamped to [MinBits, MaxBits]; otherwise
	// every transaction uses FixedBits.
	Adaptive  bool
	FixedBits int
	MinBits   int
	MaxBits   int
	// FrameLoss is the independent per-receiver frame-loss probability.
	FrameLoss float64
	// ProbeEvery is the oracle sampling period (default 500ms): each probe
	// measures true concurrency T and Eq. 4's width at every awake node.
	ProbeEvery time.Duration
	// AuditEvery samples receivers (gid % AuditEvery == 0) for invariant
	// audits: never-misdeliver and identifier freshness. 0 disables.
	AuditEvery int
}

// Validate rejects configurations the model cannot represent.
func (c SensorConfig) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("shard: Nodes must be >= 1, got %d", c.Nodes)
	case c.NodesPerTile < 1:
		return fmt.Errorf("shard: NodesPerTile must be >= 1, got %d", c.NodesPerTile)
	case c.Range <= 0:
		return fmt.Errorf("shard: Range must be positive, got %g", c.Range)
	case c.SendGap <= 0:
		return fmt.Errorf("shard: SendGap must be positive, got %v", c.SendGap)
	case c.Fragments < 1 || c.Fragments > 16:
		return fmt.Errorf("shard: Fragments must be in [1, 16], got %d", c.Fragments)
	case c.FrameAir <= 0:
		return fmt.Errorf("shard: FrameAir must be positive, got %v", c.FrameAir)
	case c.FragGap < 0:
		return fmt.Errorf("shard: FragGap must be >= 0, got %v", c.FragGap)
	case c.DataBits < 1:
		return fmt.Errorf("shard: DataBits must be >= 1, got %d", c.DataBits)
	case c.MinBits < 1 || c.MaxBits > 30 || c.MinBits > c.MaxBits:
		return fmt.Errorf("shard: need 1 <= MinBits <= MaxBits <= 30, got [%d, %d]", c.MinBits, c.MaxBits)
	case !c.Adaptive && (c.FixedBits < 1 || c.FixedBits > 30):
		return fmt.Errorf("shard: FixedBits must be in [1, 30], got %d", c.FixedBits)
	case c.FrameLoss < 0 || c.FrameLoss >= 1:
		return fmt.Errorf("shard: FrameLoss must be in [0, 1), got %g", c.FrameLoss)
	case c.AuditEvery < 0:
		return fmt.Errorf("shard: AuditEvery must be >= 0, got %d", c.AuditEvery)
	}
	return c.Duty.Validate()
}

// Counters aggregates a trial's observables. Tile counters are merged in
// tile-index order, so sums (including float accumulations) are identical
// at every worker count.
type Counters struct {
	// Offered counts transactions started; Records counts fragments put
	// on the air.
	Offered int64
	Records int64
	// TruthPairs counts (transaction, receiver) pairs where the receiver
	// physically heard every fragment — the ground-truth denominator.
	// Delivered counts pairs the AFF reassembler completed cleanly.
	// Conflicts counts identifier collisions detected at a receiver (two
	// live transactions sharing a widthkey).
	TruthPairs int64
	Delivered  int64
	Conflicts  int64
	// Per-fragment channel verdicts at in-range awake receivers.
	NotHeard   int64
	HalfDuplex int64
	Collided   int64
	RandomLoss int64
	// Events counts tile heap events, Verdicts per-receiver fragment
	// evaluations; their sum is the trial's events-per-second numerator.
	Events   uint64
	Verdicts uint64
	// SumWidth accumulates the chosen width per offered transaction.
	SumWidth float64
	// Probe accumulators: true concurrency T, Eq. 4 optimal width, and
	// |achieved - optimal| per awake node per probe.
	ProbeT     float64
	ProbeOptH  float64
	ProbeGap   float64
	Probes     int64
	GapSamples int64
	AwakeSum   int64
	ProbeRound int64
	// Audit results over sampled receivers.
	AuditedDeliveries   int64
	Misdeliveries       int64
	FreshnessViolations int64
}

// Add accumulates another counter set (tile or trial merge). Callers must
// add in a deterministic order — tile index, then trial index — so float
// accumulations are identical at every worker count.
func (c *Counters) Add(o *Counters) {
	c.Offered += o.Offered
	c.Records += o.Records
	c.TruthPairs += o.TruthPairs
	c.Delivered += o.Delivered
	c.Conflicts += o.Conflicts
	c.NotHeard += o.NotHeard
	c.HalfDuplex += o.HalfDuplex
	c.Collided += o.Collided
	c.RandomLoss += o.RandomLoss
	c.Events += o.Events
	c.Verdicts += o.Verdicts
	c.SumWidth += o.SumWidth
	c.ProbeT += o.ProbeT
	c.ProbeOptH += o.ProbeOptH
	c.ProbeGap += o.ProbeGap
	c.Probes += o.Probes
	c.GapSamples += o.GapSamples
	c.AwakeSum += o.AwakeSum
	c.ProbeRound += o.ProbeRound
	c.AuditedDeliveries += o.AuditedDeliveries
	c.Misdeliveries += o.Misdeliveries
	c.FreshnessViolations += o.FreshnessViolations
}

// MeanWidth is the achieved identifier width per offered transaction.
func (c *Counters) MeanWidth() float64 {
	if c.Offered == 0 {
		return 0
	}
	return c.SumWidth / float64(c.Offered)
}

// MeanT is the probe-measured mean concurrency at awake nodes.
func (c *Counters) MeanT() float64 {
	if c.Probes == 0 {
		return 0
	}
	return c.ProbeT / float64(c.Probes)
}

// MeanOptH is the probe-measured mean Eq. 4 optimal width.
func (c *Counters) MeanOptH() float64 {
	if c.Probes == 0 {
		return 0
	}
	return c.ProbeOptH / float64(c.Probes)
}

// MeanGap is the mean |achieved - optimal| width over probed senders.
func (c *Counters) MeanGap() float64 {
	if c.GapSamples == 0 {
		return 0
	}
	return c.ProbeGap / float64(c.GapSamples)
}

// MeanAwake is the mean number of awake nodes per probe round.
func (c *Counters) MeanAwake() float64 {
	if c.ProbeRound == 0 {
		return 0
	}
	return float64(c.AwakeSum) / float64(c.ProbeRound)
}

// CollisionRate is 1 - Delivered/TruthPairs: the fraction of physically
// complete receptions the AFF layer lost to identifier collisions — the
// measured counterpart of Eq. 4's prediction.
func (c *Counters) CollisionRate() float64 {
	if c.TruthPairs == 0 {
		return 0
	}
	return 1 - float64(c.Delivered)/float64(c.TruthPairs)
}

// Cluster is a full massive-population world: the tiles, their shared
// geometry, and the Eq. 4 width memo. It implements Router.
type Cluster struct {
	cfg  SensorConfig
	geom Geometry
	// optW memoises the adaptive width choice per integer concurrency
	// estimate — OptimalBits is a search, far too slow per transaction.
	optW      []uint8
	tiles     []*SensorTile
	nextProbe time.Duration
}

// NewCluster lays out the population. Node placement and initial schedules
// are drawn from per-tile labelled streams of src, so the world is a pure
// function of (cfg, seed).
func NewCluster(cfg SensorConfig, src *xrand.Source) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 500 * time.Millisecond
	}
	nTiles := (cfg.Nodes + cfg.NodesPerTile - 1) / cfg.NodesPerTile
	c := &Cluster{
		cfg:       cfg,
		geom:      SquareGeometry(nTiles, cfg.Range),
		nextProbe: cfg.ProbeEvery,
	}
	c.optW = make([]uint8, 65)
	for t := 1; t < len(c.optW); t++ {
		w, _ := model.OptimalBits(cfg.DataBits, float64(t), cfg.MaxBits)
		if w < cfg.MinBits {
			w = cfg.MinBits
		}
		c.optW[t] = uint8(w)
	}
	total := c.geom.Tiles()
	per, rem := cfg.Nodes/total, cfg.Nodes%total
	lossSeed := src.Child("shard", "loss").Seed()
	base := uint32(0)
	c.tiles = make([]*SensorTile, total)
	for i := 0; i < total; i++ {
		n := per
		if i < rem {
			n++
		}
		rng := src.Stream("shard", "tile", strconv.Itoa(i))
		c.tiles[i] = newSensorTile(c, int32(i), base, n, rng, lossSeed)
		base += uint32(n)
	}
	return c, nil
}

// Geom exposes the tile layout.
func (c *Cluster) Geom() Geometry { return c.geom }

// Regions returns the tiles as engine regions, in tile-index order.
func (c *Cluster) Regions() []Region {
	rs := make([]Region, len(c.tiles))
	for i, t := range c.tiles {
		rs[i] = t
	}
	return rs
}

// Route implements Router: a fragment reaches every tile whose rectangle
// intersects the range disk around its sender.
func (c *Cluster) Route(r *Record, into []int32) []int32 {
	return c.geom.TilesTouching(float64(r.X), float64(r.Y), c.cfg.Range, into)
}

// OnBarrier is the engine hook: it fires oracle probes on schedule. It runs
// sequentially at the barrier, walking tiles in index order.
func (c *Cluster) OnBarrier(now time.Duration) {
	for now >= c.nextProbe {
		c.probe()
		c.nextProbe += c.cfg.ProbeEvery
	}
}

// Counters merges tile counters in tile-index order.
func (c *Cluster) Counters() Counters {
	var out Counters
	for _, t := range c.tiles {
		out.Add(&t.ctr)
	}
	return out
}

// adaptiveWidth maps a concurrency estimate to the memoised Eq. 4 width.
func (c *Cluster) adaptiveWidth(t int) uint8 {
	if t < 1 {
		t = 1
	}
	if t >= len(c.optW) {
		t = len(c.optW) - 1
	}
	return c.optW[t]
}

// probe measures ground truth the protocol cannot see: for every awake
// node, the true number of concurrently transmitting neighbors (T), the
// Eq. 4 width for that T, and the gap to the node's achieved width.
func (c *Cluster) probe() {
	for _, t := range c.tiles {
		t.collectActive()
	}
	r2 := c.cfg.Range * c.cfg.Range
	for _, t := range c.tiles {
		cx, cy := int(t.idx)%c.geom.TX, int(t.idx)/c.geom.TX
		for _, v := range t.awakeList {
			vx, vy := float64(t.x[v]), float64(t.y[v])
			conc := 1 // the node's own (hypothetical) transaction
			for ny := cy - 1; ny <= cy+1; ny++ {
				for nx := cx - 1; nx <= cx+1; nx++ {
					if nx < 0 || nx >= c.geom.TX || ny < 0 || ny >= c.geom.TY {
						continue
					}
					nt := c.tiles[ny*c.geom.TX+nx]
					for a := range nt.activeX {
						if nt == t && nt.activeNode[a] == v {
							continue
						}
						dx := float64(nt.activeX[a]) - vx
						dy := float64(nt.activeY[a]) - vy
						if dx*dx+dy*dy <= r2 {
							conc++
						}
					}
				}
			}
			optH := float64(c.adaptiveWidth(conc))
			t.ctr.ProbeT += float64(conc)
			t.ctr.ProbeOptH += optH
			t.ctr.Probes++
			if w := t.curWidth[v]; w > 0 {
				g := float64(w) - optH
				if g < 0 {
					g = -g
				}
				t.ctr.ProbeGap += g
				t.ctr.GapSamples++
			}
		}
		t.ctr.AwakeSum += int64(len(t.awakeList))
		t.ctr.ProbeRound++
	}
}

// Tile event kinds.
const (
	evWake = iota
	evSleep
	evTxStart
	evFrag
)

// tev is a compact heap event: 24 bytes, no closure, no allocation.
type tev struct {
	at   time.Duration
	seq  uint32
	node int32
	kind uint8
}

// Reassembly keys and values. AFF partials are keyed by (receiver,
// widthkey) ONLY — the receiver has no idea who is sending, that is the
// paper's premise — while truth partials carry the real (sender, tx).
type pkey struct {
	rx int32
	wk uint64
}

type partVal struct {
	from     uint32
	tx       uint32
	got      uint32
	epoch    uint32
	conflict bool
	lastEnd  time.Duration
}

type tkey struct {
	rx   int32
	from uint32
	tx   uint32
}

type truthVal struct {
	got     uint32
	epoch   uint32
	lastEnd time.Duration
}

// SensorTile is one shard: a struct-of-arrays population slice plus its
// own event heap, rng stream, live-record window and reassembly maps.
type SensorTile struct {
	cl   *Cluster
	idx  int32
	base uint32
	n    int
	rng  *rand.Rand
	// rect is the tile's world rectangle (x0, y0, x1, y1).
	rect [4]float64

	// Struct-of-arrays node state. A node is awake iff awakePos >= 0;
	// wakeAt/sleepAt always describe the most recent awake interval, so
	// verdicts can check coverage even after the sleep event fired.
	x, y      []float32
	wakeAt    []time.Duration
	sleepAt   []time.Duration
	epoch     []uint32
	prevWK    []uint64
	curWK     []uint64
	curWidth  []uint8
	fragsLeft []uint8
	curTx     []uint32
	partCnt   []int32
	awakePos  []int32
	awakeList []int32

	heap    []tev
	seq     uint32
	emitBuf []Record
	emitSeq uint32

	// window holds live records sorted by (End, Seq); the first nSettled
	// are already judged and kept only for overlap scans.
	window   []Record
	nSettled int
	overl    []int32

	parts map[pkey]partVal
	truth map[tkey]truthVal

	// active* are probe scratch: transmitting nodes at the probe instant.
	activeX, activeY []float32
	activeNode       []int32

	lossSeed    uint64
	lossThresh  uint64
	settleCalls uint64
	ctr         Counters
}

// sweepEvery is the settle-call period of the map/window sweep;
// keepAirtimes is how many frame airtimes of settled history the overlap
// window retains (must cover one full window plus one airtime).
const (
	sweepEvery   = 256
	keepAirtimes = 4
)

func newSensorTile(cl *Cluster, idx int32, base uint32, n int, rng *rand.Rand, lossSeed uint64) *SensorTile {
	t := &SensorTile{
		cl:       cl,
		idx:      idx,
		base:     base,
		n:        n,
		rng:      rng,
		lossSeed: lossSeed,
		// Loss comparison in fixed point: hash < FrameLoss * 2^64.
		lossThresh: uint64(cl.cfg.FrameLoss * float64(1<<63) * 2),
		parts:      make(map[pkey]partVal),
		truth:      make(map[tkey]truthVal),
	}
	x0, y0, x1, y1 := cl.geom.Rect(int(idx))
	t.rect = [4]float64{x0, y0, x1, y1}
	t.x = make([]float32, n)
	t.y = make([]float32, n)
	t.wakeAt = make([]time.Duration, n)
	t.sleepAt = make([]time.Duration, n)
	t.epoch = make([]uint32, n)
	t.prevWK = make([]uint64, n)
	t.curWK = make([]uint64, n)
	t.curWidth = make([]uint8, n)
	t.fragsLeft = make([]uint8, n)
	t.curTx = make([]uint32, n)
	t.partCnt = make([]int32, n)
	t.awakePos = make([]int32, n)
	t.heap = make([]tev, 0, 2*n+4)

	cfg := &cl.cfg
	pUp := cfg.Duty.AwakeFraction()
	for i := 0; i < n; i++ {
		t.x[i] = float32(x0 + rng.Float64()*(x1-x0))
		t.y[i] = float32(y0 + rng.Float64()*(y1-y0))
		t.prevWK[i] = ^uint64(0)
		t.awakePos[i] = -1
		if !cfg.Adaptive {
			t.curWidth[i] = uint8(cfg.FixedBits)
		}
		// Start in the stationary mix: awake with probability
		// MeanUp/(MeanUp+MeanDown), with the memoryless residual drawn
		// fresh either way.
		if rng.Float64() < pUp {
			t.epoch[i] = 1
			t.wakeAt[i] = 0
			t.sleepAt[i] = expDur(rng, cfg.Duty.MeanUp)
			t.awakePos[i] = int32(len(t.awakeList))
			t.awakeList = append(t.awakeList, int32(i))
			t.push(t.sleepAt[i], int32(i), evSleep)
			t.push(expDur(rng, cfg.SendGap), int32(i), evTxStart)
		} else {
			t.push(expDur(rng, cfg.Duty.MeanDown), int32(i), evWake)
		}
	}
	return t
}

// gid maps a local index to the global node id.
func (t *SensorTile) gid(i int32) uint32 { return t.base + uint32(i) }

func (t *SensorTile) audited(gid uint32) bool {
	ae := t.cl.cfg.AuditEvery
	return ae > 0 && gid%uint32(ae) == 0
}

// --- tile event heap (manual, no interface boxing) ---

func (t *SensorTile) push(at time.Duration, node int32, kind uint8) {
	t.heap = append(t.heap, tev{at: at, seq: t.seq, node: node, kind: kind})
	t.seq++
	i := len(t.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(i, p) {
			break
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *SensorTile) less(i, j int) bool {
	a, b := &t.heap[i], &t.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (t *SensorTile) pop() tev {
	h := t.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	t.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && t.less(l, s) {
			s = l
		}
		if r < last && t.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		t.heap[i], t.heap[s] = t.heap[s], t.heap[i]
		i = s
	}
	return top
}

// --- Region implementation ---

// Advance runs the tile's events up to the window end.
func (t *SensorTile) Advance(to time.Duration) {
	for len(t.heap) > 0 && t.heap[0].at <= to {
		ev := t.pop()
		t.ctr.Events++
		switch ev.kind {
		case evWake:
			t.wake(ev.node, ev.at)
		case evSleep:
			t.sleep(ev.node, ev.at)
		case evTxStart:
			t.txStart(ev.node, ev.at)
		case evFrag:
			t.frag(ev.node, ev.at)
		}
	}
}

func (t *SensorTile) wake(i int32, now time.Duration) {
	cfg := &t.cl.cfg
	// Waking wipes RAM: a new epoch invalidates every partial the node
	// held (churn semantics — crash-and-restart loses reassembly state).
	t.epoch[i]++
	t.partCnt[i] = 0
	t.wakeAt[i] = now
	t.sleepAt[i] = now + expDur(t.rng, cfg.Duty.MeanUp)
	t.awakePos[i] = int32(len(t.awakeList))
	t.awakeList = append(t.awakeList, i)
	t.push(t.sleepAt[i], i, evSleep)
	t.push(now+expDur(t.rng, cfg.SendGap), i, evTxStart)
}

func (t *SensorTile) sleep(i int32, now time.Duration) {
	p := t.awakePos[i]
	last := int32(len(t.awakeList) - 1)
	moved := t.awakeList[last]
	t.awakeList[p] = moved
	t.awakePos[moved] = p
	t.awakeList = t.awakeList[:last]
	t.awakePos[i] = -1
	t.fragsLeft[i] = 0
	t.push(now+expDur(t.rng, t.cl.cfg.Duty.MeanDown), i, evWake)
}

func (t *SensorTile) txStart(i int32, now time.Duration) {
	cfg := &t.cl.cfg
	if t.awakePos[i] < 0 || t.fragsLeft[i] > 0 {
		return // stale timer from a previous awake interval
	}
	// A transaction must fit inside the current awake interval even with
	// maximal inter-fragment gaps; one that cannot is never started (the
	// node stays quiet until its next wake reschedules the generator).
	worst := time.Duration(cfg.Fragments)*cfg.FrameAir + time.Duration(cfg.Fragments-1)*cfg.FragGap
	if now+worst > t.sleepAt[i] {
		return
	}
	var w uint8
	if cfg.Adaptive {
		// The node's estimate of T: itself plus every live reassembly in
		// its RAM — exactly the information a real receiver has.
		w = t.cl.adaptiveWidth(1 + int(t.partCnt[i]))
	} else {
		w = uint8(cfg.FixedBits)
	}
	mask := uint64(1)<<w - 1
	wk := core.WidthKey(int(w), t.rng.Uint64()&mask)
	// Freshness: never reuse the previous transaction's widthkey (the
	// turnover rule that makes identifiers ephemeral).
	for tries := 0; wk == t.prevWK[i] && tries < 16; tries++ {
		wk = core.WidthKey(int(w), t.rng.Uint64()&mask)
	}
	if t.audited(t.gid(i)) && wk == t.prevWK[i] {
		t.ctr.FreshnessViolations++
	}
	t.prevWK[i] = wk
	t.curWK[i] = wk
	t.curWidth[i] = w
	t.curTx[i]++
	t.fragsLeft[i] = uint8(cfg.Fragments)
	t.ctr.Offered++
	t.ctr.SumWidth += float64(w)
	t.frag(i, now)
}

func (t *SensorTile) frag(i int32, now time.Duration) {
	cfg := &t.cl.cfg
	if t.awakePos[i] < 0 || t.fragsLeft[i] == 0 {
		return
	}
	f := uint8(cfg.Fragments) - t.fragsLeft[i]
	t.emitBuf = append(t.emitBuf, Record{
		Seq:   uint64(t.idx)<<32 | uint64(t.emitSeq),
		From:  t.gid(i),
		X:     t.x[i],
		Y:     t.y[i],
		Start: now,
		End:   now + cfg.FrameAir,
		WK:    t.curWK[i],
		Tx:    t.curTx[i],
		Frag:  f,
		NFrag: uint8(cfg.Fragments),
	})
	t.emitSeq++
	t.ctr.Records++
	t.fragsLeft[i]--
	if t.fragsLeft[i] > 0 {
		gap := time.Duration(t.rng.Float64() * float64(cfg.FragGap))
		t.push(now+cfg.FrameAir+gap, i, evFrag)
	} else {
		t.push(now+cfg.FrameAir+expDur(t.rng, cfg.SendGap), i, evTxStart)
	}
}

// Emit hands the window's records to the barrier.
func (t *SensorTile) Emit(into []Record) []Record {
	into = append(into, t.emitBuf...)
	t.emitBuf = t.emitBuf[:0]
	return into
}

// Absorb keeps the routed records, maintaining (End, Seq) order. All new
// records end later than everything already settled, so sorting the
// unsettled tail keeps the whole window sorted.
func (t *SensorTile) Absorb(batch []Record) {
	t.window = append(t.window, batch...)
	tail := t.window[t.nSettled:]
	sort.Slice(tail, func(a, b int) bool {
		if tail[a].End != tail[b].End {
			return tail[a].End < tail[b].End
		}
		return tail[a].Seq < tail[b].Seq
	})
}

// Settle judges every absorbed record whose airtime ended by the barrier.
func (t *SensorTile) Settle(to time.Duration) {
	for t.nSettled < len(t.window) && t.window[t.nSettled].End <= to {
		t.verdicts(&t.window[t.nSettled])
		t.nSettled++
	}
	t.settleCalls++
	if t.settleCalls%sweepEvery == 0 {
		t.sweep(to)
	}
}

// Idle reports whether the tile has pending events. Duty cycles reschedule
// forever, so a sensor tile is effectively never idle; massive runs use a
// horizon, not drain.
func (t *SensorTile) Idle() bool { return len(t.heap) == 0 && len(t.window) == t.nSettled }

// verdicts evaluates one landed record against every awake local receiver.
// Verdict order mirrors the full radio stack: not-heard (asleep for part
// of the frame), half-duplex (receiver was itself transmitting), collision
// (another audible frame overlapped), then independent random loss.
func (t *SensorTile) verdicts(r *Record) {
	cfg := &t.cl.cfg
	r2 := cfg.Range * cfg.Range
	// Find the record's time-overlappers once; receivers then only test
	// audibility per overlapper. Same-sender records never overlap (a
	// sender is strictly sequential), so they are skipped wholesale.
	t.overl = t.overl[:0]
	for j := range t.window {
		o := &t.window[j]
		if o.Seq == r.Seq || o.From == r.From {
			continue
		}
		if o.Start < r.End && o.End > r.Start {
			t.overl = append(t.overl, int32(j))
		}
	}
	for _, v := range t.awakeList {
		gid := t.gid(v)
		if gid == r.From {
			continue
		}
		dx := float64(t.x[v]) - float64(r.X)
		dy := float64(t.y[v]) - float64(r.Y)
		if dx*dx+dy*dy > r2 {
			continue
		}
		t.ctr.Verdicts++
		// The receiver must have been awake for the whole airtime. (A
		// node that slept and re-woke within one lookahead window loses
		// the old interval's coverage; with mean down-times orders of
		// magnitude above the window this is unobservable.)
		if !(t.wakeAt[v] <= r.Start && r.End <= t.sleepAt[v]) {
			t.ctr.NotHeard++
			continue
		}
		half, coll := false, false
		for _, oj := range t.overl {
			o := &t.window[oj]
			if o.From == gid {
				half = true
				break
			}
			odx := float64(o.X) - float64(t.x[v])
			ody := float64(o.Y) - float64(t.y[v])
			if odx*odx+ody*ody <= r2 {
				coll = true
			}
		}
		if half {
			t.ctr.HalfDuplex++
			continue
		}
		if coll {
			t.ctr.Collided++
			continue
		}
		if t.lost(r.Seq, gid) {
			t.ctr.RandomLoss++
			continue
		}
		t.deliver(r, v)
	}
}

// lost is the counter-based per-receiver loss draw: a pure function of
// (seed, record, receiver), so it never touches the tile stream and is
// identical at any worker count.
func (t *SensorTile) lost(seq uint64, gid uint32) bool {
	if t.lossThresh == 0 {
		return false
	}
	return mix64(t.lossSeed^seq*0x9E3779B97F4A7C15^uint64(gid)*0xBF58476D1CE4E5B9) < t.lossThresh
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// deliver feeds one cleanly received fragment to both reassemblers: the
// ground-truth one (keyed by real sender and tx) and the AFF one (keyed by
// widthkey alone). Epoch mismatches mean the entry predates the receiver's
// last wake and is stale RAM: it is replaced, never merged.
func (t *SensorTile) deliver(r *Record, v int32) {
	full := uint32(1)<<r.NFrag - 1
	ep := t.epoch[v]

	tk := tkey{rx: v, from: r.From, tx: r.Tx}
	tp, ok := t.truth[tk]
	if !ok || tp.epoch != ep {
		tp = truthVal{epoch: ep}
	}
	tp.got |= 1 << r.Frag
	tp.lastEnd = r.End
	truthDone := tp.got == full
	if truthDone {
		t.ctr.TruthPairs++
		delete(t.truth, tk)
	} else {
		t.truth[tk] = tp
	}

	pk := pkey{rx: v, wk: r.WK}
	pp, ok := t.parts[pk]
	if !ok || pp.epoch != ep {
		pp = partVal{from: r.From, tx: r.Tx, epoch: ep}
		t.partCnt[v]++
	}
	if pp.from != r.From || pp.tx != r.Tx {
		// Identifier collision: a second live transaction chose the same
		// widthkey at this receiver. The reassembly is poisoned; the
		// checksum model says it can never complete.
		if !pp.conflict {
			pp.conflict = true
			t.ctr.Conflicts++
		}
		if r.End > pp.lastEnd {
			pp.lastEnd = r.End
		}
		t.parts[pk] = pp
		return
	}
	if pp.conflict {
		if r.End > pp.lastEnd {
			pp.lastEnd = r.End
		}
		t.parts[pk] = pp
		return
	}
	pp.got |= 1 << r.Frag
	pp.lastEnd = r.End
	if pp.got != full {
		t.parts[pk] = pp
		return
	}
	t.ctr.Delivered++
	t.partCnt[v]--
	delete(t.parts, pk)
	gid := t.gid(v)
	if t.audited(gid) {
		t.ctr.AuditedDeliveries++
		// Never-misdeliver: a clean AFF completion must coincide with the
		// ground-truth completion of the same (sender, tx) — if it does
		// not, the reassembler stitched fragments of different
		// transactions together.
		if !truthDone {
			t.ctr.Misdeliveries++
		}
	}
}

// collectActive snapshots currently transmitting nodes for a probe.
func (t *SensorTile) collectActive() {
	t.activeX = t.activeX[:0]
	t.activeY = t.activeY[:0]
	t.activeNode = t.activeNode[:0]
	for _, v := range t.awakeList {
		if t.fragsLeft[v] > 0 {
			t.activeX = append(t.activeX, t.x[v])
			t.activeY = append(t.activeY, t.y[v])
			t.activeNode = append(t.activeNode, v)
		}
	}
}

// sweep prunes the overlap window and expires abandoned reassembly state.
// Map iteration order is arbitrary, but every decision is a per-entry
// predicate and every update a commutative counter, so the sweep's outcome
// is deterministic.
func (t *SensorTile) sweep(now time.Duration) {
	cfg := &t.cl.cfg
	span := time.Duration(cfg.Fragments)*cfg.FrameAir + time.Duration(cfg.Fragments-1)*cfg.FragGap
	expiry := now - 4*span
	for k, v := range t.parts {
		if v.lastEnd < expiry || v.epoch != t.epoch[k.rx] {
			if v.epoch == t.epoch[k.rx] {
				t.partCnt[k.rx]--
			}
			delete(t.parts, k)
		}
	}
	for k, v := range t.truth {
		if v.lastEnd < expiry || v.epoch != t.epoch[k.rx] {
			delete(t.truth, k)
		}
	}
	cut := now - keepAirtimes*cfg.FrameAir
	kept := 0
	for kept < len(t.window) && t.window[kept].End <= cut {
		kept++
	}
	if kept > 0 {
		n := copy(t.window, t.window[kept:])
		t.window = t.window[:n]
		t.nSettled -= kept
	}
}

// expDur draws an exponential duration with the given mean, clamped to at
// least one nanosecond so schedules always advance.
func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
