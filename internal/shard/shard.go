// Package shard is the region-sharded simulation core: it partitions a
// trial's world into tiles, runs one sequential event loop per tile, and
// synchronises tiles with conservative lookahead windows so a single trial
// can span 10^5–10^6 nodes while remaining bit-for-bit deterministic at any
// worker count.
//
// # Model
//
// Virtual time advances in fixed windows of length Lookahead, which callers
// must set to the minimum radio frame airtime. Each window has two phases:
//
//	Phase 1 (Advance): every region runs its own event heap up to the
//	window end, in parallel. Sender-side events fire here and emit
//	transmission Records; nothing receiver-side is decided yet.
//
//	Barrier (Emit): the driver gathers each region's new records
//	sequentially, in region-index order, into one batch. Record order is
//	therefore a pure function of the region layout, never of worker
//	scheduling — the internal/runner merge-by-index pattern pushed down
//	into a single trial.
//
//	Phase 2 (Absorb+Settle): every region, again in parallel, absorbs the
//	read-only batch and settles reception verdicts for records whose
//	airtime ended inside the window just run.
//
// The settle rule is what makes the lookahead conservative: a record r with
// r.End <= windowEnd can only overlap transmissions o with
// o.Start < r.End <= windowEnd, and any such o was emitted in this window
// or earlier (its start event has already run), so it is already in the
// receiver's absorbed set. No tile can learn about a colliding frame "late".
//
// Determinism rules for regions: per-tile state is touched only by that
// tile's sequential Advance/Settle; randomness comes from per-tile labelled
// streams consumed only inside those calls; Settle must not draw from the
// stream at all (per-receiver noise uses counter-based hashing instead), so
// verdict evaluation order cannot shift the stream. Under those rules the
// whole trial is byte-stable for any worker count, including workers=1.
package shard

import (
	"fmt"
	"time"

	"retri/internal/runner"
	"retri/internal/sim"
)

// Record is one transmitted frame crossing the barrier: everything a
// receiving tile needs to judge reception locally. Records are immutable
// once emitted.
type Record struct {
	// Seq is globally unique and ordered within a tile:
	// tileIndex<<32 | per-tile emission counter. It breaks ties
	// deterministically and seeds per-receiver loss hashing.
	Seq uint64
	// From is the sender's global node id.
	From uint32
	// X, Y is the sender's position at transmission time.
	X, Y float32
	// Start and End bound the frame's airtime, End = Start + airtime.
	Start, End time.Duration
	// WK is the transaction's identifier under core.WidthKey (width and
	// id bits together), Tx the sender's ground-truth transaction counter.
	WK uint64
	Tx uint32
	// Frag and NFrag place the frame inside its transaction.
	Frag, NFrag uint8
}

// Region is one shard of the world. The driver guarantees: Advance, Absorb
// and Settle are each called once per window, never concurrently for the
// same region; Emit and Idle are called only from the sequential barrier.
type Region interface {
	// Advance runs the region's own events with timestamps <= to. It must
	// not touch any other region's state.
	Advance(to time.Duration)
	// Emit appends records produced since the previous barrier and returns
	// the extended slice. Called sequentially in region-index order.
	Emit(into []Record) []Record
	// Absorb hands the region the window's full record batch, read-only
	// and shared across regions. The region keeps (copies of) the records
	// that can matter to its own receivers.
	Absorb(batch []Record)
	// Settle decides reception verdicts for absorbed records with
	// End <= to, updating only region-local state.
	Settle(to time.Duration)
	// Idle reports whether the region has no pending events, for drain
	// termination.
	Idle() bool
}

// Router narrows the barrier exchange: Route appends to into the indices
// of every region that might need record r (conservatively — extra targets
// cost time, missing ones lose frames). With a Router set the driver builds
// per-region inboxes sequentially at the barrier, so Absorb sees only
// records routed to it; without one, every region absorbs the full batch.
type Router interface {
	Route(r *Record, into []int32) []int32
}

// RunStats is the driver's own accounting for the observability layer.
type RunStats struct {
	// Windows counts barrier windows executed.
	Windows uint64
	// Exchanged counts records that crossed the barrier.
	Exchanged uint64
}

// Engine drives a set of regions through lookahead windows on a persistent
// worker pool. It is single-use per trial: construct, Run, Close.
type Engine struct {
	// OnBarrier, when set, runs sequentially after every window at the
	// new safe time — the hook for probes and progress reporting.
	OnBarrier func(now time.Duration)
	// DrainIdle makes Run keep windowing past the horizon until every
	// region is idle (legacy run-to-empty semantics). When false, Run
	// stops at the first barrier at or past the horizon.
	DrainIdle bool
	// Router, when set, narrows each region's Absorb to the records
	// actually routed to it. Must be set before Run.
	Router Router

	lookahead time.Duration
	regions   []Region
	pool      *runner.Pool
	now       time.Duration
	stats     RunStats
	batch     []Record
	inbox     [][]Record
	route     []int32
}

// NewEngine creates a driver over the given regions. lookahead must be
// positive and no larger than the shortest frame airtime any region will
// emit; workers <= 1 runs everything inline.
func NewEngine(lookahead time.Duration, workers int, regions ...Region) *Engine {
	if lookahead <= 0 {
		panic(fmt.Sprintf("shard: lookahead must be positive, got %v", lookahead))
	}
	return &Engine{
		lookahead: lookahead,
		regions:   regions,
		pool:      runner.NewPool(workers),
	}
}

// Now returns the trial's safe time: every event before it has run.
func (e *Engine) Now() time.Duration { return e.now }

// Stats returns driver accounting.
func (e *Engine) Stats() RunStats { return e.stats }

// Run executes windows until the safe time reaches horizon (and, with
// DrainIdle, until all regions are idle). Regions are striped across the
// pool's workers; because every region is independent between barriers,
// the striping pattern cannot affect results.
func (e *Engine) Run(horizon time.Duration) {
	n := len(e.regions)
	w := e.pool.Workers()
	if w > n {
		w = n
	}
	for {
		if e.now >= horizon && (!e.DrainIdle || e.allIdle()) {
			return
		}
		end := e.now + e.lookahead
		e.pool.Each(w, func(worker int) {
			for i := worker; i < n; i += w {
				e.regions[i].Advance(end)
			}
		})
		e.batch = e.batch[:0]
		for _, r := range e.regions {
			e.batch = r.Emit(e.batch)
		}
		e.stats.Exchanged += uint64(len(e.batch))
		batch := e.batch
		if e.Router != nil {
			if e.inbox == nil {
				e.inbox = make([][]Record, n)
			}
			for i := range e.inbox {
				e.inbox[i] = e.inbox[i][:0]
			}
			for j := range batch {
				e.route = e.Router.Route(&batch[j], e.route[:0])
				for _, ti := range e.route {
					e.inbox[ti] = append(e.inbox[ti], batch[j])
				}
			}
		}
		e.pool.Each(w, func(worker int) {
			for i := worker; i < n; i += w {
				in := batch
				if e.Router != nil {
					in = e.inbox[i]
				}
				if len(in) > 0 {
					e.regions[i].Absorb(in)
				}
				e.regions[i].Settle(end)
			}
		})
		e.now = end
		e.stats.Windows++
		if e.OnBarrier != nil {
			e.OnBarrier(e.now)
		}
	}
}

// Close releases the worker pool.
func (e *Engine) Close() { e.pool.Close() }

func (e *Engine) allIdle() bool {
	for _, r := range e.regions {
		if !r.Idle() {
			return false
		}
	}
	return true
}

// adoptedEngine wraps a legacy single-threaded sim.Engine as one Region, so
// existing small scenarios run unchanged under the sharded driver. The
// wrapped engine already resolves receptions itself (its medium sees every
// node), so Emit/Absorb/Settle are no-ops; all that windowing must preserve
// is the event schedule and the final clock.
//
// Advance deliberately steps event-by-event via NextAt instead of calling
// RunUntil(to): RunUntil would advance the clock to the window end even when
// no event lives there, and radio energy meters accrue listening time up to
// Now — so overshooting the last event would change measured energy. With
// NextAt-stepping, the executed event sequence and the final Now are
// identical to eng.Run(), which is what makes single-tile shard output
// byte-for-byte equal to the legacy path.
type adoptedEngine struct {
	eng *sim.Engine
}

// Adopt wraps a legacy engine as a single shard region.
func Adopt(eng *sim.Engine) Region { return adoptedEngine{eng} }

func (a adoptedEngine) Advance(to time.Duration) {
	for {
		at, ok := a.eng.NextAt()
		if !ok || at > to {
			return
		}
		a.eng.RunUntil(at)
	}
}

func (a adoptedEngine) Emit(into []Record) []Record { return into }
func (a adoptedEngine) Absorb([]Record)             {}
func (a adoptedEngine) Settle(time.Duration)        {}
func (a adoptedEngine) Idle() bool                  { return a.eng.Pending() == 0 }

// DrainAdopted runs a legacy engine to completion under the sharded driver:
// the windowed, barrier-ticked equivalent of eng.Run(). Used by the sweep
// ShardWindow modes and the equivalence tests.
func DrainAdopted(eng *sim.Engine, lookahead time.Duration) RunStats {
	e := NewEngine(lookahead, 1, Adopt(eng))
	e.DrainIdle = true
	e.Run(0)
	e.Close()
	return e.Stats()
}
