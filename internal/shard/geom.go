package shard

// Geometry partitions a rectangular world into a TX x TY grid of square
// tiles of side Tile. The world spans [0, TX*Tile) x [0, TY*Tile). Each
// tile is one region of the sharded engine; with the tile side no smaller
// than the radio range, a transmission can only be audible inside the 3x3
// tile block around its origin, which is what bounds the boundary-exchange
// fan-out.
type Geometry struct {
	TX, TY int
	Tile   float64
}

// SquareGeometry returns a near-square grid of n tiles (TX*TY >= n,
// TX >= TY) with the given tile side.
func SquareGeometry(n int, tile float64) Geometry {
	if n < 1 {
		n = 1
	}
	tx := 1
	for tx*tx < n {
		tx++
	}
	ty := (n + tx - 1) / tx
	return Geometry{TX: tx, TY: ty, Tile: tile}
}

// Tiles reports the tile count.
func (g Geometry) Tiles() int { return g.TX * g.TY }

// W and H report the world extent.
func (g Geometry) W() float64 { return float64(g.TX) * g.Tile }
func (g Geometry) H() float64 { return float64(g.TY) * g.Tile }

// Rect returns tile i's bounds [x0, x1) x [y0, y1).
func (g Geometry) Rect(i int) (x0, y0, x1, y1 float64) {
	cx, cy := i%g.TX, i/g.TX
	x0 = float64(cx) * g.Tile
	y0 = float64(cy) * g.Tile
	return x0, y0, x0 + g.Tile, y0 + g.Tile
}

// TileOf returns the tile index owning point (x, y), clamping points on or
// beyond the outer edge into the border tile so callers need not special-
// case the world boundary.
func (g Geometry) TileOf(x, y float64) int {
	cx := int(x / g.Tile)
	cy := int(y / g.Tile)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.TX {
		cx = g.TX - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.TY {
		cy = g.TY - 1
	}
	return cy*g.TX + cx
}

// TilesTouching appends to into the indices of every tile whose rectangle
// intersects the closed disk of radius r around (x, y) — the set of tiles
// that might hold a receiver in range of a transmission at that point.
// Indices are appended in ascending order, so routing is deterministic.
func (g Geometry) TilesTouching(x, y, r float64, into []int32) []int32 {
	lox, hix := int((x-r)/g.Tile), int((x+r)/g.Tile)
	loy, hiy := int((y-r)/g.Tile), int((y+r)/g.Tile)
	if x-r < 0 {
		lox = 0
	}
	if y-r < 0 {
		loy = 0
	}
	if hix >= g.TX {
		hix = g.TX - 1
	}
	if hiy >= g.TY {
		hiy = g.TY - 1
	}
	for cy := loy; cy <= hiy; cy++ {
		for cx := lox; cx <= hix; cx++ {
			// Rect-disk intersection: clamp the center into the rect and
			// compare the residual distance against r.
			x0 := float64(cx) * g.Tile
			y0 := float64(cy) * g.Tile
			dx := clampResidual(x, x0, x0+g.Tile)
			dy := clampResidual(y, y0, y0+g.Tile)
			if dx*dx+dy*dy <= r*r {
				into = append(into, int32(cy*g.TX+cx))
			}
		}
	}
	return into
}

// clampResidual returns the distance from v to the interval [lo, hi]
// (zero when inside).
func clampResidual(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}
