package shard

import (
	"reflect"
	"testing"
	"time"

	"retri/internal/mobility"
	"retri/internal/sim"
	"retri/internal/xrand"
)

// --- geometry ---

// TestGeometryTiling: every point maps to the tile whose rect contains it.
func TestGeometryTiling(t *testing.T) {
	g := SquareGeometry(12, 10)
	if g.Tiles() < 12 {
		t.Fatalf("SquareGeometry(12): only %d tiles", g.Tiles())
	}
	for i := 0; i < g.Tiles(); i++ {
		x0, y0, x1, y1 := g.Rect(i)
		cx, cy := (x0+x1)/2, (y0+y1)/2
		if got := g.TileOf(cx, cy); got != i {
			t.Errorf("TileOf(center of %d) = %d", i, got)
		}
	}
	// Out-of-world points clamp to border tiles rather than panicking.
	if got := g.TileOf(-5, -5); got != 0 {
		t.Errorf("TileOf(-5,-5) = %d, want 0", got)
	}
	if got := g.TileOf(g.W()+1, g.H()+1); got != g.Tiles()-1 {
		t.Errorf("TileOf(beyond) = %d, want %d", got, g.Tiles()-1)
	}
}

// TestTilesTouching: the routed set must contain every tile that holds a
// point within range, for senders at centers, edges and corners.
func TestTilesTouching(t *testing.T) {
	g := SquareGeometry(9, 10) // 3x3 world
	cases := []struct {
		x, y float64
		want []int32
	}{
		{15, 15, []int32{0, 1, 2, 3, 4, 5, 6, 7, 8}}, // center of middle tile: full 3x3 (r == tile side)
		{5, 5, []int32{0, 1, 3, 4}},                  // center of corner tile
		{0.5, 0.5, []int32{0, 1, 3}},                 // deep corner: diagonal tile 4's corner (10,10) is ~13.4 away, out of range
	}
	for _, c := range cases {
		got := g.TilesTouching(c.x, c.y, 10, nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("TilesTouching(%g,%g): got %v want %v", c.x, c.y, got, c.want)
		}
	}
	// Conservative completeness on a grid of probe points: if any point p
	// in tile j is within r of (x, y), j must be in the routed set.
	g2 := SquareGeometry(16, 7)
	const r = 7.0
	for _, src := range [][2]float64{{3, 3}, {13.9, 7.1}, {20, 20}, {27.9, 0.1}} {
		routed := map[int32]bool{}
		for _, ti := range g2.TilesTouching(src[0], src[1], r, nil) {
			routed[ti] = true
		}
		for px := 0.0; px < g2.W(); px += 1.7 {
			for py := 0.0; py < g2.H(); py += 1.7 {
				dx, dy := px-src[0], py-src[1]
				if dx*dx+dy*dy <= r*r && !routed[int32(g2.TileOf(px, py))] {
					t.Fatalf("sender (%g,%g): in-range point (%g,%g) in unrouted tile %d",
						src[0], src[1], px, py, g2.TileOf(px, py))
				}
			}
		}
	}
}

// --- adopted legacy engine ---

// TestDrainAdoptedMatchesRun: windowed execution of a legacy engine must
// preserve the event sequence and the final clock exactly, including
// events that schedule more events across window boundaries.
func TestDrainAdoptedMatchesRun(t *testing.T) {
	build := func() (*sim.Engine, *[]string) {
		eng := sim.NewEngine()
		var order []string
		add := func(name string, d time.Duration) { eng.Schedule(d, func() { order = append(order, name) }) }
		add("a", 3*time.Millisecond)
		add("b", 3*time.Millisecond) // same instant: scheduling order must hold
		eng.Schedule(5*time.Millisecond, func() {
			order = append(order, "c")
			// Cascades landing inside, at, and beyond the next barrier.
			eng.Schedule(1500*time.Microsecond, func() { order = append(order, "c1") })
			eng.Schedule(7*time.Millisecond, func() { order = append(order, "c2") })
		})
		add("d", 40*time.Millisecond)
		return eng, &order
	}

	ref, refOrder := build()
	ref.Run()

	win, winOrder := build()
	stats := DrainAdopted(win, 2*time.Millisecond)
	if !reflect.DeepEqual(*refOrder, *winOrder) {
		t.Fatalf("event order diverged:\nrun:   %v\nshard: %v", *refOrder, *winOrder)
	}
	if ref.Now() != win.Now() {
		t.Fatalf("final clock diverged: run %v, shard %v", ref.Now(), win.Now())
	}
	if ref.Processed() != win.Processed() {
		t.Fatalf("processed diverged: run %d, shard %d", ref.Processed(), win.Processed())
	}
	if stats.Windows == 0 {
		t.Fatal("no windows executed")
	}
}

// --- sensor cluster ---

func testConfig(nodes, perTile int) SensorConfig {
	return SensorConfig{
		Nodes:        nodes,
		NodesPerTile: perTile,
		Range:        10,
		Duty:         mobility.DutyCycle{MeanUp: 400 * time.Millisecond, MeanDown: 600 * time.Millisecond},
		SendGap:      60 * time.Millisecond,
		Fragments:    3,
		FrameAir:     2 * time.Millisecond,
		FragGap:      time.Millisecond,
		DataBits:     384,
		Adaptive:     true,
		MinBits:      2,
		MaxBits:      24,
		FrameLoss:    0.02,
		ProbeEvery:   100 * time.Millisecond,
		AuditEvery:   1, // audit everything in tests
	}
}

func runCluster(t *testing.T, cfg SensorConfig, seed uint64, workers int, horizon time.Duration) (Counters, RunStats) {
	t.Helper()
	cl, err := NewCluster(cfg, xrand.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cfg.FrameAir, workers, cl.Regions()...)
	defer eng.Close()
	eng.Router = cl
	eng.OnBarrier = cl.OnBarrier
	eng.Run(horizon)
	return cl.Counters(), eng.Stats()
}

// TestClusterDeterminism: a multi-tile trial must produce identical
// counters at every worker count — the byte-stability contract. Run under
// -race this also exercises the absence of cross-tile data races.
func TestClusterDeterminism(t *testing.T) {
	cfg := testConfig(600, 40) // 15 tiles, forced boundary traffic
	ref, refStats := runCluster(t, cfg, 7, 1, time.Second)
	if ref.Offered == 0 || ref.TruthPairs == 0 {
		t.Fatalf("degenerate trial: %+v", ref)
	}
	for _, workers := range []int{2, 4, 7} {
		got, gotStats := runCluster(t, cfg, 7, workers, time.Second)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: counters diverge\nref: %+v\ngot: %+v", workers, ref, got)
		}
		if refStats != gotStats {
			t.Errorf("workers=%d: driver stats diverge: %+v vs %+v", workers, refStats, gotStats)
		}
	}
}

// TestClusterSeedSensitivity: different seeds must give different worlds.
func TestClusterSeedSensitivity(t *testing.T) {
	cfg := testConfig(200, 40)
	a, _ := runCluster(t, cfg, 1, 2, time.Second)
	b, _ := runCluster(t, cfg, 2, 2, time.Second)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 produced identical counters")
	}
}

// TestClusterInvariants: audited runs must uphold the paper's invariants
// and basic conservation between the reassemblers.
func TestClusterInvariants(t *testing.T) {
	cfg := testConfig(600, 40)
	ctr, stats := runCluster(t, cfg, 11, 4, time.Second)
	if ctr.Misdeliveries != 0 {
		t.Errorf("never-misdeliver violated %d times", ctr.Misdeliveries)
	}
	if ctr.FreshnessViolations != 0 {
		t.Errorf("identifier freshness violated %d times", ctr.FreshnessViolations)
	}
	if ctr.Delivered > ctr.TruthPairs {
		t.Errorf("delivered %d > physically complete %d", ctr.Delivered, ctr.TruthPairs)
	}
	if ctr.AuditedDeliveries != ctr.Delivered {
		t.Errorf("AuditEvery=1 but audited %d of %d deliveries", ctr.AuditedDeliveries, ctr.Delivered)
	}
	if cr := ctr.CollisionRate(); cr < 0 || cr > 1 {
		t.Errorf("collision rate %g out of range", cr)
	}
	if ctr.Probes == 0 || ctr.MeanT() < 1 {
		t.Errorf("probes broken: %d probes, meanT %g", ctr.Probes, ctr.MeanT())
	}
	if stats.Exchanged == 0 {
		t.Error("no records crossed the barrier in a multi-tile trial")
	}
	if w := ctr.MeanWidth(); w < float64(cfg.MinBits) || w > float64(cfg.MaxBits) {
		t.Errorf("mean width %g outside [%d, %d]", w, cfg.MinBits, cfg.MaxBits)
	}
}

// TestClusterFixedWidthArm: the fixed arm must report exactly FixedBits.
func TestClusterFixedWidthArm(t *testing.T) {
	cfg := testConfig(200, 40)
	cfg.Adaptive = false
	cfg.FixedBits = 8
	ctr, _ := runCluster(t, cfg, 5, 2, time.Second)
	if ctr.Offered == 0 {
		t.Fatal("no transactions offered")
	}
	if w := ctr.MeanWidth(); w != 8 {
		t.Errorf("fixed arm mean width %g, want 8", w)
	}
}

// TestSensorConfigValidate rejects the corners the model cannot represent.
func TestSensorConfigValidate(t *testing.T) {
	good := testConfig(100, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*SensorConfig){
		func(c *SensorConfig) { c.Nodes = 0 },
		func(c *SensorConfig) { c.NodesPerTile = 0 },
		func(c *SensorConfig) { c.Range = 0 },
		func(c *SensorConfig) { c.SendGap = 0 },
		func(c *SensorConfig) { c.Fragments = 0 },
		func(c *SensorConfig) { c.Fragments = 17 },
		func(c *SensorConfig) { c.FrameAir = 0 },
		func(c *SensorConfig) { c.FragGap = -1 },
		func(c *SensorConfig) { c.DataBits = 0 },
		func(c *SensorConfig) { c.MinBits = 0 },
		func(c *SensorConfig) { c.MinBits = 12; c.MaxBits = 4 },
		func(c *SensorConfig) { c.Adaptive = false; c.FixedBits = 0 },
		func(c *SensorConfig) { c.FrameLoss = 1 },
		func(c *SensorConfig) { c.AuditEvery = -1 },
		func(c *SensorConfig) { c.Duty.MeanUp = 0 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
