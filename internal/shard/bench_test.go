package shard

import (
	"testing"
	"time"

	"retri/internal/xrand"
)

// BenchmarkShardEngineEvents is the sharded core's throughput benchmark:
// one 2000-node, 50-tile duty-cycled trial per op, single worker so the
// number is a per-core rate. The events/sec metric (heap events plus
// reception verdicts per second of wall clock) is the headline the
// massive sweep reports at 10^5–10^6 nodes.
func BenchmarkShardEngineEvents(b *testing.B) {
	cfg := testConfig(2000, 40)
	cfg.ProbeEvery = 250 * time.Millisecond
	cfg.AuditEvery = 16
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := NewCluster(cfg, xrand.NewSource(9))
		if err != nil {
			b.Fatal(err)
		}
		eng := NewEngine(cfg.FrameAir, 1, cl.Regions()...)
		eng.Router = cl
		eng.OnBarrier = cl.OnBarrier
		eng.Run(250 * time.Millisecond)
		ctr := cl.Counters()
		events += ctr.Events + ctr.Verdicts
		eng.Close()
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
}

// BenchmarkShardBoundaryExchange isolates the barrier's sequential cost:
// routing a window's record batch to per-tile inboxes. Per op it routes
// 1024 records across a 7x7-tile world with a reused inbox, the exact
// work the driver does between Advance and Absorb.
func BenchmarkShardBoundaryExchange(b *testing.B) {
	cfg := testConfig(2000, 40) // 50 tiles
	cl, err := NewCluster(cfg, xrand.NewSource(11))
	if err != nil {
		b.Fatal(err)
	}
	g := cl.Geom()
	rng := xrand.NewSource(13).Stream("bench", "records")
	records := make([]Record, 1024)
	for i := range records {
		records[i] = Record{
			Seq:   uint64(i),
			From:  uint32(rng.IntN(2000)),
			X:     float32(rng.Float64() * g.W()),
			Y:     float32(rng.Float64() * g.H()),
			Start: time.Duration(i) * time.Microsecond,
			End:   time.Duration(i)*time.Microsecond + 2*time.Millisecond,
			WK:    rng.Uint64(),
		}
	}
	inbox := make([][]Record, g.Tiles())
	var route []int32
	exchange := func() {
		for t := range inbox {
			inbox[t] = inbox[t][:0]
		}
		for j := range records {
			route = cl.Route(&records[j], route[:0])
			for _, ti := range route {
				inbox[ti] = append(inbox[ti], records[j])
			}
		}
	}
	exchange() // warm the inbox capacities: steady state is what the driver runs in
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange()
	}
}
