// Package arq layers reliable delivery on top of the node drivers,
// turning the paper's thesis — identifier collisions surface as ordinary
// loss — into a testable claim: any recovery protocol that handles loss
// handles collisions for free.
//
// The endpoint is deliberately conventional: per-packet positive
// acknowledgements, NACKs for observed sequence gaps, exponential backoff
// with deterministic jitter, and a bounded retry budget. The one RETRI
// obligation is enforced in code, not by chance: every retransmission
// re-fragments under a freshly drawn identifier distinct from the
// previous attempt's (Fragmenter.FragmentAvoiding), because a retry is a
// new transaction (Section 3). The FreshIDs/RepeatedIDs counters prove
// the invariant held for a run.
//
// ARQ bookkeeping (sequence counters, outstanding packets) is modelled as
// durable node state: a crash takes the radio and the RAM-resident
// reassembly/selection state down, but the recovery layer resumes
// retrying after the restart, which is exactly the scenario the recovery
// experiment measures.
package arq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
)

// Packet kinds on the wire.
const (
	kindData = 1
	kindAck  = 2
	kindNack = 3
)

// headerLen is kind(1) + token(4) + seq(4).
const headerLen = 9

// noID is the "nothing to avoid" sentinel for a first transmission; it
// lies outside every identifier keyspace (raw identifiers are under 2^32
// because core.MaxBits is 32, and WidthKey composites under 2^38).
const noID = ^uint64(0)

// Config tunes one endpoint. The zero value plus Reliable/Ack gives the
// defaults below.
type Config struct {
	// RTO is the initial retransmission timeout (default 250ms).
	RTO time.Duration
	// MaxRTO caps exponential backoff (default 8s).
	MaxRTO time.Duration
	// Backoff multiplies the timeout after each retry (default 2).
	Backoff float64
	// Jitter spreads each timeout by ±Jitter fraction, drawn from the
	// endpoint's own random stream (default 0.1). Zero disables.
	Jitter float64
	// RetryBudget bounds retransmissions per packet; once exhausted the
	// packet is abandoned and counted, the graceful-degradation path
	// (default 8).
	RetryBudget int
	// Reliable enables the sender role: arm timers and retransmit. Off,
	// Send transmits once with the tracking header and never retries —
	// the measurement baseline the recovery experiment compares against.
	Reliable bool
	// Ack enables the receiver role: acknowledge every data packet heard
	// and NACK observed sequence gaps. Senders sharing a broadcast domain
	// must leave it off or they would acknowledge each other's traffic.
	Ack bool

	// LossAware enables graceful degradation under observed loss: the
	// endpoint keeps an EWMA of attempt outcomes (timeouts and NACKs are
	// losses, ACKs successes) and, while the estimate exceeds
	// LossThreshold, widens every armed retry timeout by OverloadBackoff
	// and sheds the retry budget to ShedBudget. Fresh-id-per-retry means
	// every retransmission is new keyspace pressure; backing off harder
	// and giving up sooner when the channel is drowning keeps retries
	// from amplifying congestion into collapse. Off (the default), none
	// of the machinery runs and behavior is byte-identical to before.
	LossAware bool
	// LossAlpha is the EWMA weight of each new outcome sample
	// (default 0.2).
	LossAlpha float64
	// LossThreshold is the loss-rate estimate above which the endpoint
	// treats the channel as overloaded (default 0.5).
	LossThreshold float64
	// ShedBudget is the effective retry budget while overloaded
	// (default RetryBudget/2, minimum 1).
	ShedBudget int
	// OverloadBackoff additionally multiplies each armed timeout while
	// overloaded (default 2).
	OverloadBackoff float64
}

func (c Config) withDefaults() Config {
	if c.RTO == 0 {
		c.RTO = 250 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 8 * time.Second
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 8
	}
	if c.LossAware {
		if c.LossAlpha == 0 {
			c.LossAlpha = 0.2
		}
		if c.LossThreshold == 0 {
			c.LossThreshold = 0.5
		}
		if c.ShedBudget == 0 {
			c.ShedBudget = c.RetryBudget / 2
			if c.ShedBudget < 1 {
				c.ShedBudget = 1
			}
		}
		if c.OverloadBackoff == 0 {
			c.OverloadBackoff = 2
		}
	}
	return c
}

// Validate rejects unusable parameter combinations.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.RTO < 0 || c.MaxRTO < c.RTO {
		return fmt.Errorf("arq: want 0 <= RTO <= MaxRTO, got %v/%v", c.RTO, c.MaxRTO)
	}
	if c.Backoff < 1 {
		return fmt.Errorf("arq: backoff %v < 1 would shrink timeouts", c.Backoff)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("arq: jitter %v out of [0, 1)", c.Jitter)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("arq: negative retry budget %d", c.RetryBudget)
	}
	if c.LossAware {
		if c.LossAlpha <= 0 || c.LossAlpha > 1 {
			return fmt.Errorf("arq: loss EWMA weight %v out of (0, 1]", c.LossAlpha)
		}
		if c.LossThreshold <= 0 || c.LossThreshold >= 1 {
			return fmt.Errorf("arq: loss threshold %v out of (0, 1)", c.LossThreshold)
		}
		if c.ShedBudget < 0 || c.ShedBudget > c.RetryBudget {
			return fmt.Errorf("arq: shed budget %d out of [0, %d]", c.ShedBudget, c.RetryBudget)
		}
		if c.OverloadBackoff < 1 {
			return fmt.Errorf("arq: overload backoff %v would shrink timeouts", c.OverloadBackoff)
		}
	}
	return nil
}

// Counters tallies one endpoint's ARQ outcomes. All fields are plain
// sums, so per-trial counters fold by addition.
type Counters struct {
	// DataSent counts first transmissions of data packets.
	DataSent int64
	// Retransmits counts retry transmissions (timeout- or NACK-driven).
	Retransmits int64
	// Acked counts data packets confirmed delivered.
	Acked int64
	// Abandoned counts packets dropped after the retry budget.
	Abandoned int64
	// AcksSent and NacksSent count receiver-role control packets.
	AcksSent  int64
	NacksSent int64
	// Delivered counts unique data packets handed up; Duplicates counts
	// redundant arrivals of already-delivered packets (re-acknowledged,
	// not re-delivered).
	Delivered  int64
	Duplicates int64
	// FreshIDs counts retransmissions that drew a fresh RETRI identifier;
	// RepeatedIDs counts retransmissions that reused the previous
	// attempt's identifier. Over an AFF transport RepeatedIDs is zero by
	// construction — the run's proof of the fresh-identifier invariant.
	FreshIDs    int64
	RepeatedIDs int64
	// SendErrors counts attempts the stack refused (radio powered down
	// mid-crash); the retry timer is the recovery path.
	SendErrors int64
	// Malformed counts delivered packets too short to carry the header.
	Malformed int64
	// BudgetShed counts packets abandoned before the static RetryBudget
	// because loss-aware shedding cut the budget — the retry-storm
	// suppression tally.
	BudgetShed int64
}

// Add folds o into c field by field, for aggregating endpoints.
func (c *Counters) Add(o Counters) {
	c.DataSent += o.DataSent
	c.Retransmits += o.Retransmits
	c.Acked += o.Acked
	c.Abandoned += o.Abandoned
	c.AcksSent += o.AcksSent
	c.NacksSent += o.NacksSent
	c.Delivered += o.Delivered
	c.Duplicates += o.Duplicates
	c.FreshIDs += o.FreshIDs
	c.RepeatedIDs += o.RepeatedIDs
	c.SendErrors += o.SendErrors
	c.Malformed += o.Malformed
	c.BudgetShed += o.BudgetShed
}

// freshSender is the optional transport capability ARQ exploits: resend
// under an identifier guaranteed to differ from the previous attempt's.
// node.AFFDriver implements it; the static stack has no identifier to
// redraw. The returned/avoided values are opaque keys in the transport's
// reassembly keyspace (raw identifiers fixed-width, (width, id) composites
// adaptive-width) — ARQ only ever stores one and hands it back.
type freshSender interface {
	SendPacketAvoiding(p []byte, avoid uint64) (uint64, error)
}

// DeliverFunc receives unique data payloads with their origin token and
// sequence, so a harness can match deliveries to sends for latency.
type DeliverFunc func(token, seq uint32, payload []byte)

// AttemptObserver watches every transmission attempt of an ARQ data
// packet over a fresh-identifier transport — the span tracer's retry-link
// feed (span.Tracer satisfies it). attempt is the retransmission count so
// far (0 for the first transmission); prevKey is the previous attempt's
// identifier key when hasPrev is set, so an observer can join the fresh
// identifier newKey back to its parent attempt. Implementations must be
// passive measurement taps.
type AttemptObserver interface {
	ARQAttempt(sender radio.NodeID, seq uint32, attempt int, hasPrev bool, prevKey, newKey uint64)
}

// AbandonObserver is the optional extension of AttemptObserver fired
// when an outstanding packet's retry chain is given up — budget
// exhausted, or relinquished early under loss-aware shedding. attempts
// is the retransmission count at abandonment; lastKey is the final
// attempt's identifier key when hasKey is set. span.Tracer satisfies it.
type AbandonObserver interface {
	ARQAbandon(sender radio.NodeID, seq uint32, attempts int, hasKey bool, lastKey uint64)
}

// txState is one outstanding (unacknowledged) packet.
type txState struct {
	seq      uint32
	payload  []byte
	lastID   uint64
	haveID   bool
	attempts int // retransmissions so far
	rto      time.Duration
	timer    *sim.Timer
}

// rxState is the receiver's view of one sender token.
type rxState struct {
	delivered map[uint32]bool
	nacked    map[uint32]bool
	next      uint32 // lowest sequence not yet delivered
}

// Endpoint is one node's ARQ half. A node runs exactly one endpoint; it
// takes over the driver's packet handler.
type Endpoint struct {
	eng   *sim.Engine
	drv   node.Driver
	cfg   Config
	rng   *rand.Rand
	token uint32

	nextSeq uint32
	out     map[uint32]*txState
	rx      map[uint32]*rxState
	deliver DeliverFunc
	attObs  AttemptObserver
	ctr     Counters

	// lossEWMA is the loss-aware path's running loss-rate estimate,
	// only maintained when cfg.LossAware.
	lossEWMA float64
}

// NewEndpoint wires an endpoint over d, identified by token (a per-sender
// session id assigned by the experiment — it rides inside the payload, so
// the RETRI layer below stays address-free). rng supplies jitter and must
// be a labelled per-node stream; nil is allowed when Jitter is 0 or the
// endpoint is not Reliable.
func NewEndpoint(eng *sim.Engine, d node.Driver, token uint32, cfg Config, rng *rand.Rand) (*Endpoint, error) {
	if eng == nil {
		return nil, errors.New("arq: nil engine")
	}
	if d == nil {
		return nil, errors.New("arq: nil driver")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Reliable && cfg.Jitter > 0 && rng == nil {
		return nil, errors.New("arq: reliable endpoint with jitter needs a random stream")
	}
	e := &Endpoint{
		eng:   eng,
		drv:   d,
		cfg:   cfg,
		rng:   rng,
		token: token,
		out:   make(map[uint32]*txState),
		rx:    make(map[uint32]*rxState),
	}
	d.SetPacketHandler(e.onPacket)
	return e, nil
}

// SetDeliver installs the unique-delivery callback.
func (e *Endpoint) SetDeliver(fn DeliverFunc) { e.deliver = fn }

// SetAttemptObserver installs a per-attempt observer; nil disables it.
func (e *Endpoint) SetAttemptObserver(o AttemptObserver) { e.attObs = o }

// Counters returns a snapshot of the endpoint's tallies.
func (e *Endpoint) Counters() Counters { return e.ctr }

// Token returns the endpoint's session token.
func (e *Endpoint) Token() uint32 { return e.token }

// Outstanding reports packets sent but neither acknowledged nor
// abandoned.
func (e *Endpoint) Outstanding() int { return len(e.out) }

// Send transmits payload once and, when Reliable, keeps retransmitting —
// each retry under a fresh identifier — until acknowledgement or budget
// exhaustion. It returns the sequence number assigned, which deliveries
// report on the far side.
func (e *Endpoint) Send(payload []byte) (uint32, error) {
	if len(payload) == 0 {
		return 0, errors.New("arq: empty payload")
	}
	seq := e.nextSeq
	e.nextSeq++
	st := &txState{seq: seq, payload: payload, rto: e.cfg.RTO}
	e.transmit(st)
	e.ctr.DataSent++
	if e.cfg.Reliable {
		e.out[seq] = st
		e.arm(st)
	}
	return seq, nil
}

// transmit sends one attempt of st, drawing a fresh identifier distinct
// from the previous attempt's when the transport can.
func (e *Endpoint) transmit(st *txState) {
	pkt := encode(kindData, e.token, st.seq, st.payload)
	fs, ok := e.drv.(freshSender)
	if !ok {
		if err := e.drv.SendPacket(pkt); err != nil {
			e.ctr.SendErrors++
		}
		return
	}
	avoid := noID
	if st.haveID {
		avoid = st.lastID
	}
	id, err := fs.SendPacketAvoiding(pkt, avoid)
	if err != nil {
		e.ctr.SendErrors++
		return
	}
	if st.haveID {
		if id == st.lastID {
			e.ctr.RepeatedIDs++
		} else {
			e.ctr.FreshIDs++
		}
	}
	if e.attObs != nil {
		e.attObs.ARQAttempt(e.drv.Radio().ID(), st.seq, st.attempts, st.haveID, avoid, id)
	}
	st.lastID, st.haveID = id, true
}

// arm schedules st's next timeout with the current RTO plus jitter,
// widened by the overload factor while the loss-aware path judges the
// channel saturated (wider gaps shed instantaneous retry pressure even
// before the budget is cut).
func (e *Endpoint) arm(st *txState) {
	d := st.rto
	if e.overloaded() {
		d = time.Duration(float64(d) * e.cfg.OverloadBackoff)
		if d > e.cfg.MaxRTO {
			d = e.cfg.MaxRTO
		}
	}
	if e.cfg.Jitter > 0 {
		spread := 1 + e.cfg.Jitter*(2*e.rng.Float64()-1)
		d = time.Duration(float64(d) * spread)
	}
	st.timer = e.eng.Schedule(d, func() { e.onTimeout(st) })
}

// observeLoss folds one attempt outcome into the loss EWMA.
func (e *Endpoint) observeLoss(lost bool) {
	if !e.cfg.LossAware {
		return
	}
	sample := 0.0
	if lost {
		sample = 1
	}
	e.lossEWMA += e.cfg.LossAlpha * (sample - e.lossEWMA)
}

// overloaded reports whether loss-aware degradation is active.
func (e *Endpoint) overloaded() bool {
	return e.cfg.LossAware && e.lossEWMA > e.cfg.LossThreshold
}

// LossEstimate returns the loss-aware EWMA (0 when disabled), for
// instrumentation.
func (e *Endpoint) LossEstimate() float64 { return e.lossEWMA }

// budget is the effective retry budget: the configured one, cut to
// ShedBudget while overloaded.
func (e *Endpoint) budget() int {
	if e.overloaded() && e.cfg.ShedBudget < e.cfg.RetryBudget {
		return e.cfg.ShedBudget
	}
	return e.cfg.RetryBudget
}

// abandonTx drops an outstanding packet, counting early (shed) abandons
// separately and notifying the abandon observer.
func (e *Endpoint) abandonTx(st *txState) {
	delete(e.out, st.seq)
	e.ctr.Abandoned++
	if st.attempts < e.cfg.RetryBudget {
		e.ctr.BudgetShed++
	}
	if e.attObs != nil {
		if ab, ok := e.attObs.(AbandonObserver); ok {
			ab.ARQAbandon(e.drv.Radio().ID(), st.seq, st.attempts, st.haveID, st.lastID)
		}
	}
}

// onTimeout retries or abandons an outstanding packet.
func (e *Endpoint) onTimeout(st *txState) {
	if e.out[st.seq] != st {
		return // acknowledged in the meantime
	}
	e.observeLoss(true)
	if st.attempts >= e.budget() {
		e.abandonTx(st)
		return
	}
	st.attempts++
	e.ctr.Retransmits++
	e.transmit(st)
	st.rto = time.Duration(float64(st.rto) * e.cfg.Backoff)
	if st.rto > e.cfg.MaxRTO {
		st.rto = e.cfg.MaxRTO
	}
	e.arm(st)
}

// onPacket dispatches every packet the stack delivers to this node.
func (e *Endpoint) onPacket(data []byte) {
	kind, token, seq, payload, ok := decode(data)
	if !ok {
		e.ctr.Malformed++
		return
	}
	switch kind {
	case kindData:
		e.onData(token, seq, payload)
	case kindAck:
		e.onAck(token, seq)
	case kindNack:
		e.onNack(token, seq)
	default:
		e.ctr.Malformed++
	}
}

// onData handles a data packet in the receiver role: dedupe, deliver,
// acknowledge, and request obvious gaps.
func (e *Endpoint) onData(token, seq uint32, payload []byte) {
	// Every role dedupes and delivers — a sender overhearing a peer's
	// broadcast can still hand it up — but only the Ack role confirms.
	r := e.rx[token]
	if r == nil {
		r = &rxState{delivered: make(map[uint32]bool), nacked: make(map[uint32]bool)}
		e.rx[token] = r
	}
	if r.delivered[seq] {
		e.ctr.Duplicates++
	} else {
		r.delivered[seq] = true
		e.ctr.Delivered++
		if e.deliver != nil {
			e.deliver(token, seq, payload)
		}
	}
	if !e.cfg.Ack {
		return
	}
	// Re-acknowledge duplicates too: the first ACK may have been lost.
	e.sendControl(kindAck, token, seq)
	e.ctr.AcksSent++
	for r.delivered[r.next] {
		r.next++
	}
	// One NACK ever per missing sequence below the newest arrival; the
	// sender's retry timer is the backstop if the NACK itself is lost.
	for miss := r.next; miss < seq; miss++ {
		if r.delivered[miss] || r.nacked[miss] {
			continue
		}
		r.nacked[miss] = true
		e.sendControl(kindNack, token, miss)
		e.ctr.NacksSent++
	}
}

// onAck resolves an outstanding packet (sender role).
func (e *Endpoint) onAck(token, seq uint32) {
	if token != e.token {
		return // confirms some other sender's packet
	}
	st, ok := e.out[seq]
	if !ok {
		return
	}
	st.timer.Cancel()
	delete(e.out, seq)
	e.ctr.Acked++
	e.observeLoss(false)
}

// onNack retransmits an outstanding packet immediately (sender role). The
// retry still counts against the budget and re-arms the timer at the
// current backoff.
func (e *Endpoint) onNack(token, seq uint32) {
	if token != e.token {
		return
	}
	st, ok := e.out[seq]
	if !ok {
		return
	}
	e.observeLoss(true)
	if st.attempts >= e.budget() {
		return // let the timer abandon it
	}
	st.timer.Cancel()
	st.attempts++
	e.ctr.Retransmits++
	e.transmit(st)
	e.arm(st)
}

// sendControl transmits an ACK or NACK. Best effort: a control packet
// the radio refuses (node crashed) is simply lost.
func (e *Endpoint) sendControl(kind byte, token, seq uint32) {
	if err := e.drv.SendPacket(encode(kind, token, seq, nil)); err != nil {
		e.ctr.SendErrors++
	}
}

// encode builds the wire packet: kind, token, sequence, payload.
func encode(kind byte, token, seq uint32, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	b[0] = kind
	binary.BigEndian.PutUint32(b[1:5], token)
	binary.BigEndian.PutUint32(b[5:9], seq)
	copy(b[headerLen:], payload)
	return b
}

// decode splits a wire packet; control packets carry no payload.
func decode(b []byte) (kind byte, token, seq uint32, payload []byte, ok bool) {
	if len(b) < headerLen {
		return 0, 0, 0, nil, false
	}
	return b[0], binary.BigEndian.Uint32(b[1:5]), binary.BigEndian.Uint32(b[5:9]), b[headerLen:], true
}
