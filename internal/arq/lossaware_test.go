package arq

import (
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// attemptLog records every attempt and abandonment with its virtual time.
type attemptLog struct {
	eng *sim.Engine

	attemptAt  []time.Duration
	attemptKey []uint64

	abandoned  bool
	abandonAt  time.Duration
	abandonTry int
	abandonKey uint64
	hasKey     bool
}

func (l *attemptLog) ARQAttempt(sender radio.NodeID, seq uint32, attempt int, hasPrev bool, prevKey, newKey uint64) {
	l.attemptAt = append(l.attemptAt, l.eng.Now())
	l.attemptKey = append(l.attemptKey, newKey)
}

func (l *attemptLog) ARQAbandon(sender radio.NodeID, seq uint32, attempts int, hasKey bool, lastKey uint64) {
	l.abandoned = true
	l.abandonAt = l.eng.Now()
	l.abandonTry = attempts
	l.abandonKey = lastKey
	l.hasKey = hasKey
}

func TestLossAwareShedsBudget(t *testing.T) {
	// Total loss: every attempt times out. The EWMA (alpha 0.2) crosses the
	// 0.5 threshold after the fourth loss, the budget drops to ShedBudget,
	// and the chain is abandoned with 3 retransmissions instead of 8.
	p := radio.DefaultParams()
	p.FrameLoss = 1
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{
		Reliable: true, RetryBudget: 8,
		LossAware: true, ShedBudget: 2,
	})
	r.affNode(t, 2, 16) // a peer exists but hears nothing

	log := &attemptLog{eng: r.eng}
	sender.SetAttemptObserver(log)
	if _, err := sender.Send(payload(0, 12)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", c.Abandoned)
	}
	if c.BudgetShed != 1 {
		t.Errorf("BudgetShed = %d, want 1 (abandoned before the static budget)", c.BudgetShed)
	}
	if c.Retransmits >= 8 {
		t.Errorf("Retransmits = %d, want fewer than the static budget of 8", c.Retransmits)
	}
	if est := sender.LossEstimate(); est <= 0.5 {
		t.Errorf("LossEstimate = %v at abandonment, want > threshold 0.5", est)
	}
	if !log.abandoned {
		t.Fatal("AbandonObserver never fired")
	}
	if int64(log.abandonTry) != c.Retransmits {
		t.Errorf("abandon reported %d attempts, counters say %d", log.abandonTry, c.Retransmits)
	}
	if !log.hasKey || log.abandonKey != log.attemptKey[len(log.attemptKey)-1] {
		t.Errorf("abandon key = (%v, %d), want the final attempt's key %d",
			log.hasKey, log.abandonKey, log.attemptKey[len(log.attemptKey)-1])
	}
}

func TestLossAwareWidensTimeout(t *testing.T) {
	// Backoff pinned to 1 isolates the overload widening: once the first
	// timeout saturates the EWMA (alpha 1), the next armed gap must be
	// OverloadBackoff times the base RTO, within the ±10% jitter.
	p := radio.DefaultParams()
	p.FrameLoss = 1
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{
		Reliable: true, RTO: 100 * time.Millisecond, Backoff: 1, RetryBudget: 3,
		LossAware: true, LossAlpha: 1, LossThreshold: 0.5, ShedBudget: 1, OverloadBackoff: 4,
	})
	log := &attemptLog{eng: r.eng}
	sender.SetAttemptObserver(log)
	if _, err := sender.Send(payload(0, 12)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	if len(log.attemptAt) != 2 || !log.abandoned {
		t.Fatalf("attempts = %d, abandoned = %v; want 2 attempts then abandonment",
			len(log.attemptAt), log.abandoned)
	}
	firstGap := log.attemptAt[1] - log.attemptAt[0]
	if firstGap < 90*time.Millisecond || firstGap > 110*time.Millisecond {
		t.Errorf("pre-overload gap %v outside 100ms ± 10%% jitter", firstGap)
	}
	finalGap := log.abandonAt - log.attemptAt[1]
	if finalGap < 360*time.Millisecond || finalGap > 440*time.Millisecond {
		t.Errorf("overloaded gap %v outside 400ms ± 10%% jitter (4× widening)", finalGap)
	}
}

func TestLossAwareRecoversAfterAcks(t *testing.T) {
	// A lossless follow-up stream of acknowledged packets must pull the
	// EWMA back down and disengage the shed budget.
	p := radio.DefaultParams()
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{
		Reliable: true, LossAware: true, LossAlpha: 0.5,
	})
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})
	_ = sink

	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 200 * time.Millisecond
		i := i
		r.eng.ScheduleAt(at, func() {
			if _, err := sender.Send(payload(i, 12)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Acked != 6 || c.Abandoned != 0 {
		t.Fatalf("Acked/Abandoned = %d/%d, want 6/0 on a clean channel", c.Acked, c.Abandoned)
	}
	if est := sender.LossEstimate(); est > 0.1 {
		t.Errorf("LossEstimate = %v after six clean ACKs, want near zero", est)
	}
	if c.BudgetShed != 0 {
		t.Errorf("BudgetShed = %d on a clean channel, want 0", c.BudgetShed)
	}
}

func TestLossAwareConfigValidation(t *testing.T) {
	base := Config{Reliable: true, LossAware: true}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"alpha above one", func(c *Config) { c.LossAlpha = 1.5 }},
		{"alpha negative", func(c *Config) { c.LossAlpha = -0.1 }},
		{"threshold at one", func(c *Config) { c.LossThreshold = 1 }},
		{"shed beyond budget", func(c *Config) { c.RetryBudget = 4; c.ShedBudget = 5 }},
		{"overload backoff shrinks", func(c *Config) { c.OverloadBackoff = 0.5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
