package arq

import (
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/xrand"
)

// testWidth is a constant node.WidthPolicy for tests.
type testWidth int

func (w testWidth) Bits() int { return int(w) }

// adaptiveNode builds an adaptive-width AFF driver whose Width policy
// pins every transaction (and every retry) to width bits inside a
// maxBits space.
func (r *rig) adaptiveNode(t *testing.T, id radio.NodeID, maxBits, width int) *node.AFFDriver {
	t.Helper()
	cfg := aff.Config{
		Space:             core.MustSpace(maxBits),
		MTU:               27,
		AdaptiveWidth:     true,
		ReassemblyTimeout: time.Second,
	}
	rad := r.med.MustAttach(id)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(uint64(id)).Stream("sel", t.Name()))
	d, err := node.NewAFF(rad, cfg, sel, node.AFFOptions{Engine: r.eng, Width: testWidth(width)})
	if err != nil {
		t.Fatalf("NewAFF(%d): %v", id, err)
	}
	return d
}

// TestAdaptiveWidthFreshIDInvariant closes the loop on the adaptive-width
// retransmission bugfix: under loss, every ARQ retry through a
// width-policy driver must hit the air as a new same-width transaction
// under a fresh identifier. Before the fix, retries ignored the policy
// (reverting to the full-width codec) and the avoid comparison mixed raw
// ids with composite keys, so this invariant could not even be stated.
func TestAdaptiveWidthFreshIDInvariant(t *testing.T) {
	p := radio.DefaultParams()
	p.FrameLoss = 0.3
	r := newRig(t, p)
	// Width 2 inside a 9-bit space maximizes redraw pressure on the
	// narrow pool while leaving plenty of numerically-equal wide ids to
	// confuse a raw-id comparison.
	sender := r.endpoint(t, r.adaptiveNode(t, 1, 9, 2), 1, Config{Reliable: true, RetryBudget: 6})
	sink := r.endpoint(t, r.adaptiveNode(t, 2, 9, 2), 0, Config{Ack: true})

	delivered := 0
	sink.SetDeliver(func(uint32, uint32, []byte) { delivered++ })

	const n = 12
	for i := 0; i < n; i++ {
		i := i
		r.eng.ScheduleAt(time.Duration(i)*200*time.Millisecond, func() {
			if _, err := sender.Send(payload(i, 10)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Retransmits == 0 {
		t.Fatal("30% loss produced no retransmissions; test is vacuous")
	}
	if c.RepeatedIDs != 0 {
		t.Errorf("RepeatedIDs = %d under a width policy, want 0 by construction", c.RepeatedIDs)
	}
	// The radio never went down, so every retry recorded a fresh draw.
	if c.FreshIDs != c.Retransmits {
		t.Errorf("FreshIDs = %d, Retransmits = %d: every airborne retry must redraw", c.FreshIDs, c.Retransmits)
	}
	if delivered == 0 {
		t.Error("nothing delivered through the adaptive-width stack")
	}
}
