package arq

import (
	"bytes"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
	"retri/internal/xrand"
)

// rig is a two-role test network: one engine, one medium.
type rig struct {
	eng *sim.Engine
	med *radio.Medium
}

func newRig(t *testing.T, p radio.Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	rng := xrand.NewSource(17).Stream("arq-test", t.Name())
	return &rig{eng: eng, med: radio.NewMedium(eng, radio.FullMesh{}, p, rng)}
}

func (r *rig) affNode(t *testing.T, id radio.NodeID, bits int) *node.AFFDriver {
	t.Helper()
	cfg := aff.Config{Space: core.MustSpace(bits), MTU: 27, ReassemblyTimeout: time.Second}
	rad := r.med.MustAttach(id)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(uint64(id)).Stream("sel", t.Name()))
	d, err := node.NewAFF(rad, cfg, sel, node.AFFOptions{Engine: r.eng})
	if err != nil {
		t.Fatalf("NewAFF(%d): %v", id, err)
	}
	return d
}

func (r *rig) endpoint(t *testing.T, d node.Driver, token uint32, cfg Config) *Endpoint {
	t.Helper()
	rng := xrand.NewSource(uint64(token)).Stream("jitter", t.Name())
	e, err := NewEndpoint(r.eng, d, token, cfg, rng)
	if err != nil {
		t.Fatalf("NewEndpoint(%d): %v", token, err)
	}
	return e
}

func payload(seq, n int) []byte {
	p := bytes.Repeat([]byte{byte(seq)}, n)
	p[0] = byte(seq >> 8)
	return p
}

func TestReliableDeliveryUnderLoss(t *testing.T) {
	p := radio.DefaultParams()
	p.FrameLoss = 0.2
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{Reliable: true})
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})

	got := make(map[uint32][]byte)
	sink.SetDeliver(func(token, seq uint32, pl []byte) {
		if token != 1 {
			t.Errorf("delivery from unknown token %d", token)
		}
		got[seq] = append([]byte(nil), pl...)
	})

	const n = 20
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		i := i
		r.eng.ScheduleAt(at, func() {
			if _, err := sender.Send(payload(i, 12)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	r.eng.Run()

	for i := 0; i < n; i++ {
		if want := payload(i, 12); !bytes.Equal(got[uint32(i)], want) {
			t.Errorf("seq %d: got %x, want %x", i, got[uint32(i)], want)
		}
	}
	sc, kc := sender.Counters(), sink.Counters()
	if sc.Acked != n || sender.Outstanding() != 0 {
		t.Errorf("Acked = %d (outstanding %d), want all %d confirmed", sc.Acked, sender.Outstanding(), n)
	}
	if sc.Retransmits == 0 {
		t.Error("20% frame loss produced no retransmissions; test is vacuous")
	}
	// The fresh-identifier invariant: the radio never went down, so every
	// retransmission hit the air under a new identifier.
	if sc.RepeatedIDs != 0 {
		t.Errorf("RepeatedIDs = %d, want 0 by construction", sc.RepeatedIDs)
	}
	if sc.FreshIDs != sc.Retransmits {
		t.Errorf("FreshIDs = %d, Retransmits = %d: every airborne retry must redraw", sc.FreshIDs, sc.Retransmits)
	}
	if kc.Delivered != n {
		t.Errorf("sink Delivered = %d, want %d unique", kc.Delivered, n)
	}
	if kc.AcksSent < n {
		t.Errorf("AcksSent = %d, want at least one per packet", kc.AcksSent)
	}
}

func TestFreshIDInvariantInTinySpace(t *testing.T) {
	// A 2-bit identifier space maximizes redraw pressure: even here a
	// retransmission must never reuse the previous attempt's identifier.
	p := radio.DefaultParams()
	p.FrameLoss = 0.5
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 2), 1, Config{Reliable: true, RetryBudget: 4})
	r.endpoint(t, r.affNode(t, 2, 2), 0, Config{Ack: true})

	for i := 0; i < 10; i++ {
		i := i
		r.eng.ScheduleAt(time.Duration(i)*200*time.Millisecond, func() {
			if _, err := sender.Send(payload(i, 8)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Retransmits == 0 {
		t.Fatal("50% loss produced no retransmissions")
	}
	if c.RepeatedIDs != 0 {
		t.Errorf("RepeatedIDs = %d in a 2-bit space, want 0 by construction", c.RepeatedIDs)
	}
	if c.FreshIDs == 0 {
		t.Error("no retransmission drew a fresh identifier")
	}
}

func TestRetryBudgetAbandons(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{Reliable: true, RetryBudget: 3})
	// The sink hears and delivers but never acknowledges (Ack off):
	// the sender must exhaust its budget and degrade gracefully.
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{})

	for i := 0; i < 2; i++ {
		if _, err := sender.Send(payload(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Abandoned != 2 {
		t.Errorf("Abandoned = %d, want 2", c.Abandoned)
	}
	if c.Acked != 0 {
		t.Errorf("Acked = %d with a mute receiver", c.Acked)
	}
	if c.Retransmits != 2*3 {
		t.Errorf("Retransmits = %d, want budget × packets = 6", c.Retransmits)
	}
	if sender.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after abandonment, state leak", sender.Outstanding())
	}
	if sink.Counters().Delivered != 2 {
		t.Errorf("mute sink still delivers data: got %d, want 2", sink.Counters().Delivered)
	}
}

// windowLoss drops every frame from one node before a cutoff time.
type windowLoss struct {
	from  radio.NodeID
	until time.Duration
}

func (w windowLoss) Drop(from, _ radio.NodeID, at time.Duration) bool {
	return from == w.from && at < w.until
}

func TestNackRecoversGapBeforeTimeout(t *testing.T) {
	p := radio.DefaultParams()
	p.Loss = windowLoss{from: 1, until: 50 * time.Millisecond}
	r := newRig(t, p)
	// RTO far out: if sequence 0 arrives quickly it was the NACK path.
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{Reliable: true, RTO: 10 * time.Second, MaxRTO: 20 * time.Second})
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})

	var deliveredAt []time.Duration
	sink.SetDeliver(func(_, seq uint32, _ []byte) {
		deliveredAt = append(deliveredAt, r.eng.Now())
	})

	if _, err := sender.Send(payload(0, 8)); err != nil { // lost in the window
		t.Fatal(err)
	}
	r.eng.ScheduleAt(100*time.Millisecond, func() {
		if _, err := sender.Send(payload(1, 8)); err != nil { // arrives, exposes the gap
			t.Error(err)
		}
	})
	r.eng.Run()

	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d packets, want both", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		if at >= 10*time.Second {
			t.Errorf("delivery at %v waited for the retry timer; NACK should have recovered it", at)
		}
	}
	if nacks := sink.Counters().NacksSent; nacks != 1 {
		t.Errorf("NacksSent = %d, want exactly one per missing sequence", nacks)
	}
	if c := sender.Counters(); c.Retransmits != 1 || c.Acked != 2 {
		t.Errorf("sender counters %+v, want 1 NACK-driven retransmit and 2 acks", c)
	}
}

func TestDuplicateDataReAcknowledged(t *testing.T) {
	p := radio.DefaultParams()
	p.Loss = windowLoss{from: 2, until: time.Second} // sink's ACKs lost early
	r := newRig(t, p)
	sender := r.endpoint(t, r.affNode(t, 1, 16), 1, Config{Reliable: true, RTO: 400 * time.Millisecond})
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})

	if _, err := sender.Send(payload(0, 8)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	kc := sink.Counters()
	if kc.Delivered != 1 {
		t.Errorf("Delivered = %d, want the duplicate suppressed to 1", kc.Delivered)
	}
	if kc.Duplicates == 0 {
		t.Error("no duplicate arrivals; the lost-ACK scenario did not materialize")
	}
	if kc.AcksSent < 2 {
		t.Errorf("AcksSent = %d, want re-acknowledgement of duplicates", kc.AcksSent)
	}
	if c := sender.Counters(); c.Acked != 1 {
		t.Errorf("Acked = %d, want eventual confirmation", c.Acked)
	}
}

func TestMalformedPacketsCounted(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	peer := r.affNode(t, 1, 16)
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})

	// Too short for the header, and a well-framed packet of unknown kind.
	if err := peer.SendPacket([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := peer.SendPacket(encode(9, 7, 7, []byte("?"))); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	c := sink.Counters()
	if c.Malformed != 2 {
		t.Errorf("Malformed = %d, want 2", c.Malformed)
	}
	if c.Delivered != 0 {
		t.Errorf("Delivered = %d for garbage traffic", c.Delivered)
	}
}

func TestStaticTransportNoIdentifierCounters(t *testing.T) {
	// The static stack has no identifier to redraw; ARQ still delivers
	// reliably and the identifier counters stay untouched.
	p := radio.DefaultParams()
	p.FrameLoss = 0.2
	r := newRig(t, p)
	scfg := func(id radio.NodeID, addr uint64) node.Driver {
		d, err := node.NewStatic(r.med.MustAttach(id), staticConfig(), addr)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	sender := r.endpoint(t, scfg(1, 100), 1, Config{Reliable: true})
	sink := r.endpoint(t, scfg(2, 200), 0, Config{Ack: true})

	const n = 10
	for i := 0; i < n; i++ {
		i := i
		r.eng.ScheduleAt(time.Duration(i)*100*time.Millisecond, func() {
			if _, err := sender.Send(payload(i, 12)); err != nil {
				t.Error(err)
			}
		})
	}
	r.eng.Run()

	c := sender.Counters()
	if c.Acked != n {
		t.Errorf("Acked = %d, want %d", c.Acked, n)
	}
	if c.Retransmits == 0 {
		t.Error("lossy static run produced no retransmissions")
	}
	if c.FreshIDs != 0 || c.RepeatedIDs != 0 {
		t.Errorf("identifier counters (%d, %d) moved on a static transport", c.FreshIDs, c.RepeatedIDs)
	}
	if sink.Counters().Delivered != n {
		t.Errorf("Delivered = %d, want %d", sink.Counters().Delivered, n)
	}
}

func TestRetryRidesOverCrash(t *testing.T) {
	// ARQ state is durable: a send attempted while the node is down fails
	// (SendErrors), but the retry timer keeps going and delivers after the
	// restart — the recovery experiment's core scenario in miniature.
	r := newRig(t, radio.DefaultParams())
	drv := r.affNode(t, 1, 16)
	sender := r.endpoint(t, drv, 1, Config{Reliable: true})
	sink := r.endpoint(t, r.affNode(t, 2, 16), 0, Config{Ack: true})

	drv.Crash()
	if _, err := sender.Send(payload(0, 8)); err != nil {
		t.Fatal(err)
	}
	r.eng.ScheduleAt(2*time.Second, drv.Restart)
	r.eng.Run()

	c := sender.Counters()
	if c.SendErrors == 0 {
		t.Error("sends while crashed did not count as SendErrors")
	}
	if c.Acked != 1 {
		t.Errorf("Acked = %d, want delivery after restart", c.Acked)
	}
	if c.RepeatedIDs != 0 {
		t.Errorf("RepeatedIDs = %d, want 0", c.RepeatedIDs)
	}
	if sink.Counters().Delivered != 1 {
		t.Errorf("sink Delivered = %d, want 1", sink.Counters().Delivered)
	}
}

func TestCountersFold(t *testing.T) {
	a := Counters{DataSent: 1, Retransmits: 2, Acked: 3, Abandoned: 4, AcksSent: 5, NacksSent: 6,
		Delivered: 7, Duplicates: 8, FreshIDs: 9, RepeatedIDs: 10, SendErrors: 11, Malformed: 12}
	b := a
	b.Add(a)
	want := Counters{DataSent: 2, Retransmits: 4, Acked: 6, Abandoned: 8, AcksSent: 10, NacksSent: 12,
		Delivered: 14, Duplicates: 16, FreshIDs: 18, RepeatedIDs: 20, SendErrors: 22, Malformed: 24}
	if b != want {
		t.Errorf("Add = %+v, want %+v", b, want)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RTO: -time.Second},
		{RTO: 2 * time.Second, MaxRTO: time.Second},
		{Backoff: 0.5},
		{Jitter: -0.1},
		{Jitter: 1},
		{RetryBudget: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestNewEndpointErrors(t *testing.T) {
	r := newRig(t, radio.DefaultParams())
	d := r.affNode(t, 1, 16)
	rng := xrand.NewSource(1).Stream("e")
	if _, err := NewEndpoint(nil, d, 1, Config{}, rng); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewEndpoint(r.eng, nil, 1, Config{}, rng); err == nil {
		t.Error("nil driver accepted")
	}
	if _, err := NewEndpoint(r.eng, d, 1, Config{Reliable: true}, nil); err == nil {
		t.Error("reliable endpoint with default jitter accepted without a random stream")
	}
	if _, err := NewEndpoint(r.eng, d, 1, Config{RTO: -1}, rng); err == nil {
		t.Error("invalid config accepted")
	}
	e, err := NewEndpoint(r.eng, d, 1, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Send(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if e.Token() != 1 {
		t.Errorf("Token = %d", e.Token())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 40} {
		pl := bytes.Repeat([]byte{0xC3}, n)
		kind, token, seq, got, ok := decode(encode(kindData, 7, 9, pl))
		if !ok || kind != kindData || token != 7 || seq != 9 || !bytes.Equal(got, pl) {
			t.Errorf("round trip failed for %d-byte payload", n)
		}
	}
	for short := 0; short < headerLen; short++ {
		if _, _, _, _, ok := decode(make([]byte, short)); ok {
			t.Errorf("%d-byte packet decoded", short)
		}
	}
}

func staticConfig() staticaddr.Config {
	return staticaddr.Config{AddrBits: 16, MTU: 27, ReassemblyTimeout: time.Second}
}
