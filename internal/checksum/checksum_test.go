package checksum

import (
	"testing"
	"testing/quick"
)

func TestSumInternetKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want uint16
	}{
		// Classic RFC 1071 worked example.
		{"rfc1071", []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}, ^uint16(0xddf2)},
		{"empty", nil, 0xFFFF},
		{"single zero byte", []byte{0x00}, 0xFFFF},
		{"single byte", []byte{0xAB}, ^uint16(0xAB00)},
		{"two bytes", []byte{0x12, 0x34}, ^uint16(0x1234)},
		{"odd length", []byte{0x12, 0x34, 0x56}, ^uint16(0x1234 + 0x5600)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SumInternet(tt.data); got != tt.want {
				t.Errorf("SumInternet(%x) = %04x, want %04x", tt.data, got, tt.want)
			}
		})
	}
}

func TestSumInternetCarryFolding(t *testing.T) {
	// Many 0xFFFF words force repeated carry folds.
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = 0xFF
	}
	// Ones'-complement sum of N 0xffff words is 0xffff, so checksum is 0.
	if got := SumInternet(data); got != 0 {
		t.Errorf("SumInternet(all-ff) = %04x, want 0000", got)
	}
}

func TestSumCRC16KnownVectors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want uint16
	}{
		// Standard CRC-16/CCITT-FALSE check value.
		{"123456789", []byte("123456789"), 0x29B1},
		{"empty", nil, 0xFFFF},
		{"single A", []byte("A"), 0xB915},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SumCRC16(tt.data); got != tt.want {
				t.Errorf("SumCRC16(%q) = %04x, want %04x", tt.data, got, tt.want)
			}
		})
	}
}

func TestSumDispatch(t *testing.T) {
	data := []byte("hello sensor world")
	if got, want := Sum(Internet, data), SumInternet(data); got != want {
		t.Errorf("Sum(Internet) = %04x, want %04x", got, want)
	}
	if got, want := Sum(CRC16, data), SumCRC16(data); got != want {
		t.Errorf("Sum(CRC16) = %04x, want %04x", got, want)
	}
	// Unknown kind falls back to Internet.
	if got, want := Sum(Kind(99), data), SumInternet(data); got != want {
		t.Errorf("Sum(unknown) = %04x, want %04x", got, want)
	}
}

func TestKindString(t *testing.T) {
	if Internet.String() != "internet" {
		t.Errorf("Internet.String() = %q", Internet.String())
	}
	if CRC16.String() != "crc16-ccitt" {
		t.Errorf("CRC16.String() = %q", CRC16.String())
	}
	if Kind(0).String() != "unknown" {
		t.Errorf("Kind(0).String() = %q", Kind(0).String())
	}
}

// TestSingleBitFlipDetected verifies both algorithms detect any single-bit
// corruption, the dominant physical error mode the AFF driver relies on the
// checksum to catch.
func TestSingleBitFlipDetected(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		bit := int(pos) % (8 * len(data))
		orig16 := SumCRC16(data)
		origIn := SumInternet(data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[bit/8] ^= 1 << uint(bit%8)
		return SumCRC16(mut) != orig16 && SumInternet(mut) != origIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestInternetChecksumIncrementalEquivalence: checksumming x||y equals
// folding the two half-sums, a standard Internet-checksum identity that the
// implementation must preserve for even-length prefixes.
func TestInternetChecksumEvenSplit(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = a[:len(a)-len(a)%2]
		}
		joined := append(append([]byte{}, a...), b...)
		sumA := uint32(^SumInternet(a))
		sumB := uint32(^SumInternet(b))
		total := sumA + sumB
		for total>>16 != 0 {
			total = (total & 0xFFFF) + total>>16
		}
		return SumInternet(joined) == ^uint16(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSumInternet(b *testing.B) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		SumInternet(data)
	}
}

func BenchmarkSumCRC16(b *testing.B) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		SumCRC16(data)
	}
}
