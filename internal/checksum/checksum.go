// Package checksum provides the 16-bit checksums used by the AFF
// fragmentation service.
//
// The paper's packet-introduction fragment carries a checksum over the whole
// packet; reassembled packets whose checksum fails are discarded, which is
// also how identifier collisions surface (Section 5). Two algorithms are
// provided: the RFC 1071 Internet checksum (cheap, what an embedded driver
// of the era would use) and CRC-16/CCITT-FALSE (stronger, used to
// cross-check collision-detection sensitivity in tests and ablations).
package checksum

// Kind selects a checksum algorithm.
type Kind int

const (
	// Internet is the RFC 1071 ones'-complement checksum.
	Internet Kind = iota + 1
	// CRC16 is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
	CRC16
)

// String returns the algorithm name.
func (k Kind) String() string {
	switch k {
	case Internet:
		return "internet"
	case CRC16:
		return "crc16-ccitt"
	default:
		return "unknown"
	}
}

// Sum computes the checksum of data using algorithm k. Unknown kinds fall
// back to the Internet checksum so a zero-configured service still detects
// corruption.
func Sum(k Kind, data []byte) uint16 {
	switch k {
	case CRC16:
		return SumCRC16(data)
	default:
		return SumInternet(data)
	}
}

// SumInternet computes the RFC 1071 Internet checksum: the ones'-complement
// of the ones'-complement sum of data taken as big-endian 16-bit words, with
// an implicit zero pad byte when len(data) is odd.
func SumInternet(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// crc16Table is the CRC-16/CCITT lookup table for polynomial 0x1021.
var crc16Table = makeCRC16Table()

func makeCRC16Table() [256]uint16 {
	var table [256]uint16
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		table[i] = crc
	}
	return table
}

// SumCRC16 computes CRC-16/CCITT-FALSE (init 0xFFFF, no reflection, no
// final XOR) of data.
func SumCRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
