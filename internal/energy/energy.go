// Package energy provides transmission/reception accounting for the
// simulated radios.
//
// The paper's whole argument is priced in bits: "every bit transmitted
// reduces the lifetime of the network" (Pottie, quoted in Section 2.3), and
// Section 4.4 observes that header savings only matter when the MAC adds
// few bits of its own per frame. Meters count on-air bits and listening
// time; Models convert the counts to Joules; MAC profiles capture the
// framing overhead regimes contrasted in Section 4.4.
package energy

import "time"

// Meter accumulates a radio's activity. The zero value is ready to use.
type Meter struct {
	TxBits    int64
	RxBits    int64
	TxFrames  int64
	RxFrames  int64
	ListenFor time.Duration
}

// AddTx records the transmission of one frame of the given on-air size.
func (m *Meter) AddTx(bits int) {
	m.TxBits += int64(bits)
	m.TxFrames++
}

// AddRx records the successful reception of one frame.
func (m *Meter) AddRx(bits int) {
	m.RxBits += int64(bits)
	m.RxFrames++
}

// AddListen records d of idle listening.
func (m *Meter) AddListen(d time.Duration) {
	if d > 0 {
		m.ListenFor += d
	}
}

// Add merges other into m, for aggregating per-node meters network-wide.
func (m *Meter) Add(other Meter) {
	m.TxBits += other.TxBits
	m.RxBits += other.RxBits
	m.TxFrames += other.TxFrames
	m.RxFrames += other.RxFrames
	m.ListenFor += other.ListenFor
}

// Model converts meter readings to energy.
//
// The defaults (DefaultModel) are loosely calibrated to the class of radio
// the paper used — a low-power short-range module in the tens of kbit/s —
// where per-bit TX and RX costs are the same order of magnitude and idle
// listening draws continuously.
type Model struct {
	// TxJPerBit is Joules consumed per transmitted bit.
	TxJPerBit float64
	// RxJPerBit is Joules consumed per received bit.
	RxJPerBit float64
	// ListenW is the idle listening power draw in Watts.
	ListenW float64
}

// DefaultModel approximates a Radiometrix-RPC-class radio: ~25 mW TX at
// 40 kbit/s, ~15 mW RX, ~12 mW idle listening.
func DefaultModel() Model {
	return Model{
		TxJPerBit: 25e-3 / 40e3,
		RxJPerBit: 15e-3 / 40e3,
		ListenW:   12e-3,
	}
}

// Joules converts a meter reading to total energy under the model.
func (mo Model) Joules(m Meter) float64 {
	return float64(m.TxBits)*mo.TxJPerBit +
		float64(m.RxBits)*mo.RxJPerBit +
		m.ListenFor.Seconds()*mo.ListenW
}

// MACProfile describes per-frame framing overhead added below the
// fragmentation layer. Section 4.4's point: AFF's header savings are
// meaningful under RPC-like framing and drowned out under 802.11-like
// framing.
type MACProfile struct {
	Name             string
	PerFrameOverhead int // bits added to every frame on air
}

// RPCProfile models the paper's Radiometrix RPC packet controller: a short
// preamble, sync word and length byte — a few tens of bits per frame.
func RPCProfile() MACProfile {
	return MACProfile{Name: "rpc-like", PerFrameOverhead: 40}
}

// IEEE80211Profile models a heavyweight MAC: PLCP preamble and header plus
// a 24-byte MAC header and 4-byte FCS — several hundred bits per frame
// ("hundreds of bits of overhead per packet", Section 4.4).
func IEEE80211Profile() MACProfile {
	return MACProfile{Name: "802.11-like", PerFrameOverhead: 144 + 48 + 8*24 + 8*4}
}

// BareProfile models an idealized MAC with no framing overhead; useful for
// isolating protocol-level header costs in ablations.
func BareProfile() MACProfile {
	return MACProfile{Name: "bare"}
}
