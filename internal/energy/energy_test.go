package energy

import (
	"math"
	"testing"
	"time"
)

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddTx(100)
	m.AddTx(50)
	m.AddRx(30)
	m.AddListen(2 * time.Second)
	if m.TxBits != 150 || m.TxFrames != 2 {
		t.Errorf("Tx: bits=%d frames=%d, want 150/2", m.TxBits, m.TxFrames)
	}
	if m.RxBits != 30 || m.RxFrames != 1 {
		t.Errorf("Rx: bits=%d frames=%d, want 30/1", m.RxBits, m.RxFrames)
	}
	if m.ListenFor != 2*time.Second {
		t.Errorf("ListenFor = %v, want 2s", m.ListenFor)
	}
}

func TestMeterNegativeListenIgnored(t *testing.T) {
	var m Meter
	m.AddListen(-time.Second)
	if m.ListenFor != 0 {
		t.Errorf("ListenFor = %v, want 0 after negative add", m.ListenFor)
	}
}

func TestMeterAddMerges(t *testing.T) {
	var a, b Meter
	a.AddTx(10)
	a.AddListen(time.Second)
	b.AddRx(20)
	b.AddTx(5)
	a.Add(b)
	if a.TxBits != 15 || a.TxFrames != 2 || a.RxBits != 20 || a.RxFrames != 1 {
		t.Errorf("merged meter = %+v", a)
	}
}

func TestModelJoules(t *testing.T) {
	mo := Model{TxJPerBit: 2, RxJPerBit: 3, ListenW: 4}
	m := Meter{TxBits: 10, RxBits: 5, ListenFor: 2 * time.Second}
	got := mo.Joules(m)
	want := 10.0*2 + 5.0*3 + 2.0*4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Joules = %v, want %v", got, want)
	}
}

func TestDefaultModelPlausible(t *testing.T) {
	mo := DefaultModel()
	if mo.TxJPerBit <= 0 || mo.RxJPerBit <= 0 || mo.ListenW <= 0 {
		t.Errorf("DefaultModel has non-positive parameters: %+v", mo)
	}
	if mo.TxJPerBit <= mo.RxJPerBit {
		t.Errorf("TX per-bit (%v) should exceed RX per-bit (%v)", mo.TxJPerBit, mo.RxJPerBit)
	}
	// A low-power radio should spend well under a millijoule per bit.
	if mo.TxJPerBit > 1e-3 {
		t.Errorf("TxJPerBit = %v, implausibly large", mo.TxJPerBit)
	}
}

func TestMACProfilesOrdering(t *testing.T) {
	bare, rpc, wifi := BareProfile(), RPCProfile(), IEEE80211Profile()
	if bare.PerFrameOverhead != 0 {
		t.Errorf("bare overhead = %d, want 0", bare.PerFrameOverhead)
	}
	if !(rpc.PerFrameOverhead > bare.PerFrameOverhead) {
		t.Error("RPC profile should cost more than bare")
	}
	// Section 4.4: 802.11 adds *hundreds* of bits per frame.
	if wifi.PerFrameOverhead < 200 {
		t.Errorf("802.11 overhead = %d bits, want hundreds", wifi.PerFrameOverhead)
	}
	if !(wifi.PerFrameOverhead > 5*rpc.PerFrameOverhead) {
		t.Errorf("802.11 (%d) should dwarf RPC (%d)", wifi.PerFrameOverhead, rpc.PerFrameOverhead)
	}
	for _, p := range []MACProfile{bare, rpc, wifi} {
		if p.Name == "" {
			t.Error("profile missing name")
		}
	}
}
