package model

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEStaticPaperValues(t *testing.T) {
	// Section 4.2: "transmitting 16 bits of data with a 16- or 32-bit
	// identifier always leads to a constant 50% or 33% efficiency".
	if got := EStatic(16, 16); !almost(got, 0.5, 1e-12) {
		t.Errorf("EStatic(16,16) = %v, want 0.5", got)
	}
	if got := EStatic(16, 32); !almost(got, 1.0/3.0, 1e-12) {
		t.Errorf("EStatic(16,32) = %v, want 1/3", got)
	}
	// Figure 2 static lines for 128-bit data.
	if got := EStatic(128, 16); !almost(got, 128.0/144.0, 1e-12) {
		t.Errorf("EStatic(128,16) = %v", got)
	}
	if got := EStatic(128, 32); !almost(got, 0.8, 1e-12) {
		t.Errorf("EStatic(128,32) = %v, want 0.8", got)
	}
}

func TestEStaticDegenerate(t *testing.T) {
	if EStatic(0, 16) != 0 || EStatic(-1, 16) != 0 || EStatic(16, -1) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	if EStatic(16, 0) != 1 {
		t.Error("zero-size header means perfect efficiency")
	}
}

func TestPSuccessBoundaries(t *testing.T) {
	// A lone transaction never collides.
	if got := PSuccess(8, 1); got != 1 {
		t.Errorf("PSuccess(8, T=1) = %v, want 1", got)
	}
	// T below 1 clamps to 1.
	if got := PSuccess(8, 0.25); got != 1 {
		t.Errorf("PSuccess(8, T=0.25) = %v, want 1", got)
	}
	// Zero-width pool with contention always collides.
	if got := PSuccess(0, 5); got != 0 {
		t.Errorf("PSuccess(0, T=5) = %v, want 0", got)
	}
	if got := PSuccess(0, 1); got != 1 {
		t.Errorf("PSuccess(0, T=1) = %v, want 1", got)
	}
}

func TestPSuccessEquationForm(t *testing.T) {
	// Hand-computed Eq. 4 values.
	if got, want := PSuccess(1, 2), 0.25; !almost(got, want, 1e-12) {
		t.Errorf("PSuccess(1,2) = %v, want %v ((1-1/2)^2)", got, want)
	}
	if got, want := PSuccess(2, 2), 0.5625; !almost(got, want, 1e-12) {
		t.Errorf("PSuccess(2,2) = %v, want %v ((3/4)^2)", got, want)
	}
	// Figure 4's model: T=5, exponent 8.
	if got, want := PSuccess(3, 5), math.Pow(7.0/8.0, 8); !almost(got, want, 1e-12) {
		t.Errorf("PSuccess(3,5) = %v, want %v", got, want)
	}
}

func TestPSuccessMonotonicity(t *testing.T) {
	f := func(hRaw, tRaw uint16) bool {
		h := int(hRaw%30) + 1
		tt := float64(tRaw%1000) + 1
		// More identifier bits never hurt.
		if PSuccess(h+1, tt) < PSuccess(h, tt) {
			return false
		}
		// More contention never helps.
		if PSuccess(h, tt+1) > PSuccess(h, tt) {
			return false
		}
		p := PSuccess(h, tt)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCollisionRateComplements(t *testing.T) {
	for _, h := range []int{1, 4, 9, 16} {
		for _, tt := range []float64{1, 5, 256} {
			if got := CollisionRate(h, tt) + PSuccess(h, tt); !almost(got, 1, 1e-12) {
				t.Errorf("CollisionRate+PSuccess = %v at H=%d T=%v", got, h, tt)
			}
		}
	}
}

func TestEAFFReducesToStaticWithoutContention(t *testing.T) {
	// With T=1 success is certain, so Eq. 3 degenerates to Eq. 2.
	for _, h := range []int{1, 9, 16, 32} {
		if got, want := EAFF(16, h, 1), EStatic(16, h); !almost(got, want, 1e-12) {
			t.Errorf("EAFF(16,%d,1) = %v, want EStatic = %v", h, got, want)
		}
	}
}

// TestFigure1Shape verifies the paper's headline Figure 1 claims.
func TestFigure1Shape(t *testing.T) {
	// "AFF works optimally with only 9 identifier bits in a network where
	// there are an average of 16 simultaneous transactions."
	h, e := OptimalBits(16, 16, 32)
	if h != 9 {
		t.Errorf("OptimalBits(D=16, T=16) = %d bits, want 9", h)
	}
	// At its optimum it beats both static lines.
	if e <= EStatic(16, 16) || e <= EStatic(16, 32) {
		t.Errorf("optimal EAFF %v should beat static 0.5 and 0.333", e)
	}

	// "In an extreme case of 64K simultaneous transactions ... there is no
	// room for AFF to improve; a 16-bit address space can be fully
	// utilized."
	_, e64k := OptimalBits(16, 65536, 32)
	if e64k >= EStatic(16, 16) {
		t.Errorf("EAFF optimum %v at T=64K should not beat a fully utilized 16-bit static space", e64k)
	}
}

// TestFigure2Shape verifies the 128-bit-data claims: optima shift to more
// bits and the AFF/static gap narrows.
func TestFigure2Shape(t *testing.T) {
	h16, e16 := OptimalBits(16, 16, 32)
	h128, e128 := OptimalBits(128, 16, 32)
	if h128 <= h16 {
		t.Errorf("optimum with 128-bit data (%d) should exceed optimum with 16-bit data (%d)", h128, h16)
	}
	// AFF still wins at T=16 but by less.
	gainSmall := e16 - EStatic(16, 16)
	gainLarge := e128 - EStatic(128, 16)
	if gainLarge <= 0 {
		t.Errorf("AFF should still beat 16-bit static with 128-bit data (gain %v)", gainLarge)
	}
	if gainLarge >= gainSmall {
		t.Errorf("gap should narrow with larger data: small-data gain %v, large-data gain %v", gainSmall, gainLarge)
	}
}

// TestFigure1CurveShape: each AFF curve rises to a single peak and decays
// toward the header-amortization asymptote.
func TestFigure1CurveShape(t *testing.T) {
	pts, err := AFFCurve(16, 16, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 32 {
		t.Fatalf("len(curve) = %d, want 32", len(pts))
	}
	peak := 0
	for i, p := range pts {
		if p.E > pts[peak].E {
			peak = i
		}
	}
	// Strictly rising before the peak, strictly falling after.
	for i := 1; i <= peak; i++ {
		if pts[i].E <= pts[i-1].E {
			t.Errorf("curve not rising at H=%d", pts[i].H)
		}
	}
	for i := peak + 1; i < len(pts); i++ {
		if pts[i].E >= pts[i-1].E {
			t.Errorf("curve not falling at H=%d", pts[i].H)
		}
	}
	// Far right of the curve approaches EStatic from below.
	last := pts[len(pts)-1]
	if diff := EStatic(16, last.H) - last.E; diff < 0 || diff > 0.01 {
		t.Errorf("tail at H=%d is %v below static, want within 1%%", last.H, diff)
	}
}

func TestAFFCurveValidation(t *testing.T) {
	if _, err := AFFCurve(16, 16, -1, 5); err == nil {
		t.Error("negative hMin accepted")
	}
	if _, err := AFFCurve(16, 16, 5, 4); err == nil {
		t.Error("hMax < hMin accepted")
	}
}

// TestFigure3Shape: static is flat then undefined; AFF is defined
// everywhere and degrades gracefully.
func TestFigure3Shape(t *testing.T) {
	loads := []float64{1, 16, 256, 4096, 65536, 1 << 17, 1 << 18}
	st := StaticLoadCurve(16, 16, loads)
	aff := AFFLoadCurve(16, 16, loads)

	for i, p := range st {
		if p.T <= 65536 {
			if !p.Defined || !almost(p.E, 0.5, 1e-12) {
				t.Errorf("static at T=%v: %+v, want defined 0.5", p.T, p)
			}
		} else if p.Defined {
			t.Errorf("static defined past address-space exhaustion at T=%v", p.T)
		}
		_ = i
	}
	for i, p := range aff {
		if !p.Defined {
			t.Errorf("AFF undefined at T=%v", p.T)
		}
		if i > 0 && p.E > aff[i-1].E {
			t.Errorf("AFF efficiency increased with load at T=%v", p.T)
		}
	}
	// AFF still does *something* past static exhaustion.
	if last := aff[len(aff)-1]; last.E <= 0 {
		t.Errorf("AFF efficiency at T=%v is %v, want > 0", last.T, last.E)
	}
}

func TestStaticSupports(t *testing.T) {
	if !StaticSupports(16, 65536) {
		t.Error("16-bit space should support exactly 2^16 transactions")
	}
	if StaticSupports(16, 65537) {
		t.Error("16-bit space should not support 2^16+1 transactions")
	}
}

// TestOptimalBitsBalances: the paper's Section 4.2 explanation — larger
// data raises the cost of a collision, pushing the optimum toward more
// identifier bits; higher density does the same.
func TestOptimalBitsMonotoneInDensity(t *testing.T) {
	prev := 0
	for _, tt := range []float64{2, 16, 256, 4096, 65536} {
		h, _ := OptimalBits(16, tt, 32)
		if h < prev {
			t.Errorf("optimum decreased to %d bits at T=%v", h, tt)
		}
		prev = h
	}
}

func BenchmarkPSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PSuccess(9, 16)
	}
}

func BenchmarkOptimalBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		OptimalBits(16, 256, 32)
	}
}
