package model

import "math"

// This file extends the paper's Section 4 model in the two directions its
// Section 8 names as future work: "capturing the effects of listening and
// non-uniform transaction lengths in our model."
//
// Non-uniform lengths. Equation 4 assumes every transaction spans the same
// time, giving each transaction exactly 2(T-1) contenders. Drop that
// assumption and model transaction arrivals as a Poisson process of rate
// lambda with i.i.d. durations of mean tau (an M/G/infinity channel). By
// Slivnyak's theorem, the number of *other* transactions overlapping a
// tagged transaction of duration s is Poisson with mean lambda*(s + tau):
// those in progress at its start (lambda*tau, PASTA) plus those arriving
// during it (lambda*s). Averaging the per-transaction success probability
// (1 - 2^-H)^N over N ~ Poisson(m) uses the PGF E[z^N] = exp(-m(1-z)):
//
//	P = exp(-lambda*(s + tau) * 2^-H)
//
// and for s distributed with mean tau, the *expected* transaction success
// averages over s. For exponentially distributed durations the average has
// the closed form below. The density T relates to the load by T =
// lambda*tau + 1 (the tagged transaction plus the stationary mean), so the
// functions take T to stay comparable with Equation 4.
//
// Listening. The heuristic removes the w most recently heard identifiers
// from a sender's pool. A first-order model: each of the 2(T-1) contenders
// is avoided if its identifier was heard and still distinct within the
// window; with perfect hearing, a contender collides only if it *arrives
// later* and happens to draw the tagged identifier from its reduced pool
// of 2^H - w. Earlier contenders are avoided outright. This halves the
// exponent and shrinks the pool:
//
//	P_listen = (1 - 1/(2^H - w))^(T-1)
//
// It is an optimistic bound (real listening misses fragments and hidden
// senders); the simulation's measured listening curve should fall between
// this and Equation 4, which it does (EXPERIMENTS.md).

// PSuccessPoisson is the equal-rate, exponential-duration analogue of
// Equation 4: the expected success probability of a transaction when
// transactions arrive as a Poisson process with density t (so
// lambda*tau = t-1) and durations are exponential with mean tau.
//
// With s ~ Exp(1/tau) and per-transaction success exp(-lambda*(s+tau)/2^H):
//
//	P = exp(-(t-1)*2^-H) * 1/(1 + (t-1)*2^-H)
func PSuccessPoisson(headerBits int, t float64) float64 {
	if t < 1 {
		t = 1
	}
	if headerBits <= 0 {
		if t > 1 {
			return 0
		}
		return 1
	}
	q := (t - 1) * math.Pow(2, -float64(headerBits))
	return math.Exp(-q) / (1 + q)
}

// PSuccessFixedPoisson is the same Poisson-arrival model with
// *deterministic* durations (every transaction spans exactly tau):
//
//	P = exp(-2*(t-1)*2^-H)
//
// Comparing it with Equation 4 shows the two agree to first order:
// (1 - 2^-H)^(2(T-1)) ≈ exp(-2(T-1)*2^-H) for small 2^-H.
func PSuccessFixedPoisson(headerBits int, t float64) float64 {
	if t < 1 {
		t = 1
	}
	if headerBits <= 0 {
		if t > 1 {
			return 0
		}
		return 1
	}
	return math.Exp(-2 * (t - 1) * math.Pow(2, -float64(headerBits)))
}

// PSuccessListening is the first-order listening model: with a window
// covering w identifiers out of 2^H, only later-arriving contenders can
// collide, each with probability 1/(2^H - w).
//
// The window is clamped to leave at least one usable identifier; w <= 0
// degrades to half-exponent Equation 4 (perfect avoidance of earlier
// contenders, no pool reduction).
func PSuccessListening(headerBits int, t float64, window int) float64 {
	if t < 1 {
		t = 1
	}
	if headerBits <= 0 {
		if t > 1 {
			return 0
		}
		return 1
	}
	pool := math.Pow(2, float64(headerBits))
	w := float64(window)
	if w < 0 {
		w = 0
	}
	if w > pool-1 {
		w = pool - 1
	}
	return math.Pow(1-1/(pool-w), t-1)
}

// CollisionRatePoisson is 1 - PSuccessPoisson.
func CollisionRatePoisson(headerBits int, t float64) float64 {
	return 1 - PSuccessPoisson(headerBits, t)
}

// CollisionRateListening is 1 - PSuccessListening.
func CollisionRateListening(headerBits int, t float64, window int) float64 {
	return 1 - PSuccessListening(headerBits, t, window)
}

// EAFFListening is Equation 3 with the listening success model.
func EAFFListening(dataBits, headerBits int, t float64, window int) float64 {
	if dataBits <= 0 || headerBits < 0 {
		return 0
	}
	return float64(dataBits) * PSuccessListening(headerBits, t, window) /
		float64(dataBits+headerBits)
}
