package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPSuccessPoissonBoundaries(t *testing.T) {
	if got := PSuccessPoisson(8, 1); got != 1 {
		t.Errorf("lone transaction: %v, want 1", got)
	}
	if got := PSuccessPoisson(8, 0.5); got != 1 {
		t.Errorf("sub-unit density clamps: %v, want 1", got)
	}
	if got := PSuccessPoisson(0, 5); got != 0 {
		t.Errorf("zero-bit pool under contention: %v, want 0", got)
	}
	if got := PSuccessPoisson(0, 1); got != 1 {
		t.Errorf("zero-bit pool alone: %v, want 1", got)
	}
}

func TestPSuccessFixedPoissonApproximatesEq4(t *testing.T) {
	// exp(-2(T-1)/2^H) is the first-order form of (1-2^-H)^(2(T-1)); the
	// two must agree tightly once the pool is large.
	for _, h := range []int{8, 12, 16} {
		for _, tt := range []float64{2, 5, 16} {
			a := PSuccess(h, tt)
			b := PSuccessFixedPoisson(h, tt)
			if math.Abs(a-b) > 0.001 {
				t.Errorf("H=%d T=%v: Eq4 %v vs Poisson-fixed %v", h, tt, a, b)
			}
		}
	}
}

func TestExponentialDurationsBeatFixed(t *testing.T) {
	// Jensen: per-transaction survival is convex in the duration, so
	// random (exponential) durations at the same mean give a slightly
	// HIGHER expected success than deterministic ones.
	f := func(hRaw, tRaw uint8) bool {
		h := int(hRaw%16) + 1
		tt := float64(tRaw%64) + 2
		return PSuccessPoisson(h, tt) >= PSuccessFixedPoisson(h, tt)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPSuccessPoissonMonotonicity(t *testing.T) {
	f := func(hRaw, tRaw uint8) bool {
		h := int(hRaw%20) + 1
		tt := float64(tRaw%200) + 1
		p := PSuccessPoisson(h, tt)
		if p < 0 || p > 1 {
			return false
		}
		return PSuccessPoisson(h+1, tt) >= p && PSuccessPoisson(h, tt+1) <= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPSuccessListeningBeatsUniform(t *testing.T) {
	// The listening bound dominates Equation 4 while the window stays
	// small relative to the pool (w <= 2^H / 4 here).
	for _, h := range []int{5, 6, 9} {
		for _, tt := range []float64{2, 5, 8} {
			w := 2 * int(tt)
			if w > (1<<uint(h))/4 {
				continue
			}
			uni := PSuccess(h, tt)
			lis := PSuccessListening(h, tt, w)
			if lis < uni {
				t.Errorf("H=%d T=%v w=%d: listening %v below uniform %v", h, tt, w, lis, uni)
			}
			if lis > 1 || lis < 0 {
				t.Errorf("listening out of range: %v", lis)
			}
		}
	}
}

// TestListeningWindowCrossover: the model independently predicts what the
// window ablation measures — a window that blankets too much of the pool
// erases listening's advantage. At w = 2^H/2 the pool reduction cancels
// the exponent halving to first order.
func TestListeningWindowCrossover(t *testing.T) {
	const h, tt = 6, 16.0
	small := PSuccessListening(h, tt, 8)
	half := PSuccessListening(h, tt, 32)
	huge := PSuccessListening(h, tt, 56)
	uni := PSuccess(h, tt)
	if !(small > uni) {
		t.Errorf("small window %v should beat uniform %v", small, uni)
	}
	if math.Abs(half-uni) > 0.05 {
		t.Errorf("half-pool window %v should roughly match uniform %v", half, uni)
	}
	if !(huge < uni) {
		t.Errorf("pool-blanketing window %v should fall below uniform %v", huge, uni)
	}
}

func TestPSuccessListeningWindowClamps(t *testing.T) {
	// A window covering the whole pool clamps to leave one identifier.
	got := PSuccessListening(2, 5, 100)
	want := math.Pow(1-1.0/1.0, 4) // pool 4, clamp w=3, 1/(4-3)=1 -> 0
	if got != want {
		t.Errorf("full-window clamp: %v, want %v", got, want)
	}
	// Negative window degrades gracefully.
	if got := PSuccessListening(8, 5, -3); got != math.Pow(1-1.0/256, 4) {
		t.Errorf("negative window: %v", got)
	}
	if got := PSuccessListening(0, 5, 0); got != 0 {
		t.Errorf("zero-bit listening under contention: %v", got)
	}
	if got := PSuccessListening(8, 0.2, 4); got != 1 {
		t.Errorf("clamped density: %v", got)
	}
}

func TestCollisionComplementsExtended(t *testing.T) {
	for _, h := range []int{3, 8} {
		for _, tt := range []float64{1, 5, 64} {
			if got := CollisionRatePoisson(h, tt) + PSuccessPoisson(h, tt); math.Abs(got-1) > 1e-12 {
				t.Errorf("Poisson complement at H=%d T=%v: %v", h, tt, got)
			}
			if got := CollisionRateListening(h, tt, 10) + PSuccessListening(h, tt, 10); math.Abs(got-1) > 1e-12 {
				t.Errorf("listening complement at H=%d T=%v: %v", h, tt, got)
			}
		}
	}
}

func TestEAFFListeningShape(t *testing.T) {
	// With listening, the efficiency peak shifts left: fewer bits suffice
	// because collisions are partially avoided.
	bestUniform, bestListen := 0, 0
	var eu, el float64
	for h := 1; h <= 32; h++ {
		if e := EAFF(16, h, 16); e > eu {
			eu, bestUniform = e, h
		}
		if e := EAFFListening(16, h, 16, 32); e > el {
			el, bestListen = e, h
		}
	}
	if bestListen > bestUniform {
		t.Errorf("listening optimum (%d bits) should not exceed uniform optimum (%d bits)",
			bestListen, bestUniform)
	}
	if el < eu {
		t.Errorf("listening peak efficiency %v below uniform %v", el, eu)
	}
	if EAFFListening(0, 9, 16, 4) != 0 || EAFFListening(16, -1, 16, 4) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}
