// Package model implements the paper's analytic efficiency model
// (Section 4).
//
// Efficiency is the cost-benefit ratio of transmitting bits (Eq. 1):
//
//	E = useful bits received / total bits transmitted
//
// Packets carry D data bits behind an H-bit header. Under static
// allocation every transaction succeeds (Eq. 2). Under AFF a transaction
// succeeds only if its identifier is unique among the 2(T-1) transactions
// whose start or end it overlaps, with identifiers drawn uniformly from a
// pool of 2^H (Eq. 4), giving Eq. 3 for the expected efficiency.
package model

import (
	"fmt"
	"math"
)

// EStatic is Equation 2: the efficiency of static allocation, D/(D+H).
// Identifier collisions are impossible, so the ratio of data bits to total
// bits is the whole story.
func EStatic(dataBits, headerBits int) float64 {
	if dataBits <= 0 || headerBits < 0 {
		return 0
	}
	return float64(dataBits) / float64(dataBits+headerBits)
}

// PSuccess is Equation 4: the probability that a transaction's uniformly
// drawn H-bit identifier avoids all 2(T-1) overlapping transactions,
//
//	P = (1 - 2^-H)^(2(T-1))
//
// T is the transaction density — the average number of concurrent
// transactions visible at one point in the network. Values of T below 1
// are treated as 1 (a lone transaction cannot collide).
func PSuccess(headerBits int, t float64) float64 {
	if headerBits <= 0 {
		// A 0-bit pool has a single identifier: any contention collides.
		if t > 1 {
			return 0
		}
		return 1
	}
	if t < 1 {
		t = 1
	}
	pool := math.Pow(2, float64(headerBits))
	return math.Pow(1-1/pool, 2*(t-1))
}

// CollisionRate is 1 - PSuccess, the quantity plotted in Figure 4.
func CollisionRate(headerBits int, t float64) float64 {
	return 1 - PSuccess(headerBits, t)
}

// EAFF is Equation 3: the expected efficiency of address-free
// identifiers, D * P(success) / (D + H).
func EAFF(dataBits, headerBits int, t float64) float64 {
	if dataBits <= 0 || headerBits < 0 {
		return 0
	}
	return float64(dataBits) * PSuccess(headerBits, t) / float64(dataBits+headerBits)
}

// StaticSupports reports whether an H-bit statically allocated space can
// accommodate a load of t concurrent transactions at all. Beyond 2^H the
// address space is exhausted and static efficiency is undefined
// (Figure 3).
func StaticSupports(headerBits int, t float64) bool {
	return t <= math.Pow(2, float64(headerBits))
}

// OptimalBits searches H in [1, maxBits] for the identifier width that
// maximizes EAFF — the peak of the Figure 1/2 curves, balancing collision
// probability against header overhead. It returns the width and the
// efficiency there.
func OptimalBits(dataBits int, t float64, maxBits int) (int, float64) {
	bestH, bestE := 1, EAFF(dataBits, 1, t)
	for h := 2; h <= maxBits; h++ {
		if e := EAFF(dataBits, h, t); e > bestE {
			bestH, bestE = h, e
		}
	}
	return bestH, bestE
}

// Point is one sample of an efficiency-vs-identifier-size curve.
type Point struct {
	H int     // identifier bits
	E float64 // efficiency
}

// AFFCurve samples EAFF over H in [hMin, hMax] for fixed data size and
// transaction density — one AFF curve of Figure 1 or 2.
func AFFCurve(dataBits int, t float64, hMin, hMax int) ([]Point, error) {
	if hMin < 0 || hMax < hMin {
		return nil, fmt.Errorf("model: invalid H range [%d, %d]", hMin, hMax)
	}
	pts := make([]Point, 0, hMax-hMin+1)
	for h := hMin; h <= hMax; h++ {
		pts = append(pts, Point{H: h, E: EAFF(dataBits, h, t)})
	}
	return pts, nil
}

// LoadPoint is one sample of an efficiency-vs-load curve (Figure 3).
type LoadPoint struct {
	T float64 // offered load: concurrent transactions
	E float64 // efficiency; meaningless when !Defined
	// Defined is false where the scheme cannot operate: a statically
	// allocated space past exhaustion.
	Defined bool
}

// AFFLoadCurve samples EAFF against the given loads for a fixed identifier
// size. AFF is defined at every load (it degrades, never refuses).
func AFFLoadCurve(dataBits, headerBits int, loads []float64) []LoadPoint {
	pts := make([]LoadPoint, len(loads))
	for i, t := range loads {
		pts[i] = LoadPoint{T: t, E: EAFF(dataBits, headerBits, t), Defined: true}
	}
	return pts
}

// StaticLoadCurve samples static efficiency against the given loads.
// Efficiency is constant while the space supports the load and undefined
// beyond exhaustion.
func StaticLoadCurve(dataBits, headerBits int, loads []float64) []LoadPoint {
	pts := make([]LoadPoint, len(loads))
	e := EStatic(dataBits, headerBits)
	for i, t := range loads {
		if StaticSupports(headerBits, t) {
			pts[i] = LoadPoint{T: t, E: e, Defined: true}
		} else {
			pts[i] = LoadPoint{T: t, Defined: false}
		}
	}
	return pts
}
