# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector (so the
# parallel trial runner's no-shared-state rule is checked on every pass),
# a short coverage-guided pass over each parser/codec fuzz target, and a
# one-iteration benchmark smoke so the benchmarks never bit-rot.

GO ?= go
FUZZTIME ?= 10s
# `go test -fuzz` accepts exactly one target per invocation and one
# package per -fuzz run, so the short CI pass loops over pkg:target pairs.
FUZZ_TARGETS := \
	./internal/frame/:FuzzAFFDecode \
	./internal/frame/:FuzzStaticDecode \
	./internal/frame/:FuzzAFFBitFlip \
	./internal/frame/:FuzzStaticBitFlip \
	./internal/mobility/:FuzzMobilityScript

# Packages whose statement coverage `make cover` gates, with the floor in
# percent. The density/adapt/oracle chain is the correctness core of the
# adaptive-width story: the estimators feed the controller, and the oracle
# is the harness that judges both, so holes there are holes in the proof.
COVER_PKGS := internal/density internal/adapt internal/oracle
COVER_FLOOR := 80

.PHONY: check vet build test race fuzz benchsmoke bench profile cover

check: vet build race fuzz benchsmoke cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test $$pkg -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# benchsmoke compiles and runs every benchmark for exactly one iteration —
# cheap enough for every check, and it catches benchmarks broken by API
# drift long before anyone needs a real measurement. The output pipes
# through benchjson, which echoes it unchanged and leaves BENCH_$(PR).json
# behind so the perf trajectory (codec ns/op, medium and engine rates,
# allocs on the nil-tracer path) is a diffable artifact across PRs.
PR ?= 6
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | $(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_$(PR).json

bench:
	$(GO) test -bench . -benchmem ./...

# cover enforces a per-package statement-coverage floor on the estimator /
# controller / oracle chain. Coverage is computed per package (not merged)
# so a well-covered neighbour cannot paper over an untested one.
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover ./$$pkg/ | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg: $$out"; exit 1; fi; \
		ok=$$(awk "BEGIN{print ($$pct >= $(COVER_FLOOR)) ? 1 : 0}"); \
		echo "cover $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg below $(COVER_FLOOR)% floor"; exit 1; fi; \
	done

# profile runs a quick figure-4 sweep with the CLI's profiling flags and
# leaves pprof artifacts plus the metrics/trace side files in ./profiles.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure 4 -quick -parallel 0 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics-out profiles/metrics.json -trace-out profiles/trace.jsonl \
		-progress > profiles/figure4.txt
	@echo "wrote profiles/{cpu,mem}.pprof, metrics.json, trace.jsonl, figure4.txt"
