# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector, so the
# parallel trial runner's no-shared-state rule is checked on every pass.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...
