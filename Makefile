# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector (so the
# parallel trial runner's no-shared-state rule is checked on every pass),
# plus a short coverage-guided pass over each frame-codec fuzz target.

GO ?= go
FUZZTIME ?= 10s
# `go test -fuzz` accepts exactly one target per invocation, so the short
# CI pass loops over them.
FUZZ_TARGETS := FuzzAFFDecode FuzzStaticDecode FuzzAFFBitFlip FuzzStaticBitFlip

.PHONY: check vet build test race fuzz bench profile

check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@for target in $(FUZZ_TARGETS); do \
		echo "fuzz $$target ($(FUZZTIME))"; \
		$(GO) test ./internal/frame/ -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

bench:
	$(GO) test -bench . -benchmem ./...

# profile runs a quick figure-4 sweep with the CLI's profiling flags and
# leaves pprof artifacts plus the metrics/trace side files in ./profiles.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure 4 -quick -parallel 0 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics-out profiles/metrics.json -trace-out profiles/trace.jsonl \
		-progress > profiles/figure4.txt
	@echo "wrote profiles/{cpu,mem}.pprof, metrics.json, trace.jsonl, figure4.txt"
