# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector (so the
# parallel trial runner's no-shared-state rule is checked on every pass),
# a short coverage-guided pass over each parser/codec fuzz target, and a
# one-iteration benchmark smoke so the benchmarks never bit-rot.

GO ?= go
FUZZTIME ?= 10s
# `go test -fuzz` accepts exactly one target per invocation and one
# package per -fuzz run, so the short CI pass loops over pkg:target pairs.
FUZZ_TARGETS := \
	./internal/frame/:FuzzAFFDecode \
	./internal/frame/:FuzzStaticDecode \
	./internal/frame/:FuzzAFFBitFlip \
	./internal/frame/:FuzzStaticBitFlip \
	./internal/mobility/:FuzzMobilityScript

.PHONY: check vet build test race fuzz benchsmoke bench profile

check: vet build race fuzz benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test $$pkg -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# benchsmoke compiles and runs every benchmark for exactly one iteration —
# cheap enough for every check, and it catches benchmarks broken by API
# drift long before anyone needs a real measurement.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -bench . -benchmem ./...

# profile runs a quick figure-4 sweep with the CLI's profiling flags and
# leaves pprof artifacts plus the metrics/trace side files in ./profiles.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure 4 -quick -parallel 0 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics-out profiles/metrics.json -trace-out profiles/trace.jsonl \
		-progress > profiles/figure4.txt
	@echo "wrote profiles/{cpu,mem}.pprof, metrics.json, trace.jsonl, figure4.txt"
