# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector, so the
# parallel trial runner's no-shared-state rule is checked on every pass.

GO ?= go

.PHONY: check vet build test race bench profile

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# profile runs a quick figure-4 sweep with the CLI's profiling flags and
# leaves pprof artifacts plus the metrics/trace side files in ./profiles.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure 4 -quick -parallel 0 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics-out profiles/metrics.json -trace-out profiles/trace.jsonl \
		-progress > profiles/figure4.txt
	@echo "wrote profiles/{cpu,mem}.pprof, metrics.json, trace.jsonl, figure4.txt"
