# Standard verify loop. `make check` is what CI and pre-commit should run:
# vet + build + the full test suite under the race detector (so the
# parallel trial runner's no-shared-state rule is checked on every pass),
# a short coverage-guided pass over each parser/codec fuzz target, and a
# one-iteration benchmark smoke so the benchmarks never bit-rot.

GO ?= go
FUZZTIME ?= 10s
# `go test -fuzz` accepts exactly one target per invocation and one
# package per -fuzz run, so the short CI pass loops over pkg:target pairs.
FUZZ_TARGETS := \
	./internal/frame/:FuzzAFFDecode \
	./internal/frame/:FuzzStaticDecode \
	./internal/frame/:FuzzAFFBitFlip \
	./internal/frame/:FuzzStaticBitFlip \
	./internal/mobility/:FuzzMobilityScript \
	./internal/flood/:FuzzRelayEnvelope

# Packages whose statement coverage `make cover` gates, with the floor in
# percent. The density/adapt/oracle chain is the correctness core of the
# adaptive-width story: the estimators feed the controller, and the oracle
# is the harness that judges both, so holes there are holes in the proof.
# dynaddr is the conventional baseline the comparisons lean on — an
# untested baseline would make every "RETRI avoids this" claim soft.
COVER_PKGS := internal/density internal/adapt internal/oracle internal/dynaddr
COVER_FLOOR := 80

.PHONY: check vet build test race fuzz benchsmoke benchcompare bench profile cover trace-demo chaossmoke scalesmoke multihopsmoke

check: vet build race fuzz benchcompare cover trace-demo chaossmoke scalesmoke multihopsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# accidental inter-test state dependencies fail in CI instead of lurking.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -shuffle=on -race ./...

fuzz:
	@for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test $$pkg -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# benchsmoke runs every benchmark once (so API drift breaks the build, not
# the next measurement), then re-runs the gated families — wire codec,
# medium delivery, engine event loop — at a real iteration count with five
# repeats, and the shard-engine family (whole-trial macro benchmarks, far
# too heavy for 1000x) at a lighter count that still clears benchjson's
# min-iters bar. All passes stream through one benchjson invocation, which
# keeps the highest-iteration, fastest-repeat measurement per benchmark
# (minimum over repeats: shared-host steal time only ever inflates a
# timing) and leaves BENCH_$(PR).json behind: smoke coverage for
# everything, trustworthy ns/op for the benchmarks the perf gate reads.
PR ?= 10
GATED_BENCH := ^Benchmark(AFFEncodeData|AFFDecodeData|Medium|ScheduleRun)
GATED_PKGS := ./internal/frame/ ./internal/radio/ ./internal/sim/
SHARD_BENCH := ^BenchmarkShard
benchsmoke:
	( $(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... && \
	  $(GO) test -run '^$$' -bench '$(GATED_BENCH)' -benchtime 1000x -count 5 -benchmem $(GATED_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(SHARD_BENCH)' -benchtime 20x -count 3 -benchmem ./internal/shard/ ) \
	| $(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_$(PR).json

# benchcompare gates the fresh snapshot against the newest committed one
# from an earlier PR: >20% growth in ns/op or allocs/op on a gated
# benchmark (or a gated benchmark vanishing) fails the build. ns/op is
# only trusted when both sides ran >= 10 iterations; allocs/op always is.
# Timing on a shared host rides minutes-long steal-time waves that even
# best-of-5 can't always dodge, so a failed comparison re-measures up to
# twice more before failing for real. Retries can only rescue timing
# noise: an allocs/op regression is deterministic and fails every
# attempt, and a real ns/op regression survives quiet windows too.
benchcompare:
	@prev=$$(ls BENCH_*.json 2>/dev/null | grep -v "^BENCH_$(PR).json$$" | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$prev" ]; then \
	  $(MAKE) benchsmoke; \
	  echo "benchcompare: no earlier snapshot, skipping"; exit 0; \
	fi; \
	for attempt in 1 2 3; do \
	  $(MAKE) benchsmoke || exit 1; \
	  if $(GO) run ./cmd/benchjson -compare $$prev BENCH_$(PR).json; then exit 0; fi; \
	  echo "benchcompare: attempt $$attempt over threshold; re-measuring"; \
	done; \
	echo "benchcompare: regression persisted across 3 measurement attempts"; exit 1

bench:
	$(GO) test -bench . -benchmem ./...

# cover enforces a per-package statement-coverage floor on the estimator /
# controller / oracle chain. Coverage is computed per package (not merged)
# so a well-covered neighbour cannot paper over an untested one.
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover ./$$pkg/ | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg: $$out"; exit 1; fi; \
		ok=$$(awk "BEGIN{print ($$pct >= $(COVER_FLOOR)) ? 1 : 0}"); \
		echo "cover $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg below $(COVER_FLOOR)% floor"; exit 1; fi; \
	done

# profile runs a quick figure-4 sweep with the CLI's profiling flags and
# leaves pprof artifacts plus the metrics/trace side files in ./profiles.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure 4 -quick -parallel 0 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics-out profiles/metrics.json -trace-out profiles/trace.jsonl \
		-progress > profiles/figure4.txt
	@echo "wrote profiles/{cpu,mem}.pprof, metrics.json, trace.jsonl, figure4.txt"

# trace-demo exercises the whole span-tracing path end to end: a short
# dynamics run with the ledger on, then the query CLI's root-cause
# summary over the ledger it wrote. Figure output goes to a side file so
# the demo's stdout is the retri-trace report itself.
trace-demo:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure dynamics -scenarios churn \
		-policies fixed,adaptive -trials 2 -duration 10s \
		-span-out profiles/spans.jsonl > profiles/dynamics.txt
	$(GO) run ./cmd/retri-trace -in profiles/spans.jsonl -failed

# chaossmoke is the short-horizon compound-fault gate: every profile x
# policy x mode cell with soak checkpoints on, so a regression in the
# degradation paths or an oracle violation under compound faults fails CI
# in seconds rather than surfacing in a long soak run.
chaossmoke:
	$(GO) run ./cmd/retri-experiments -figure chaos -trials 2 -duration 15s -soak 5s > /dev/null
	@echo "chaossmoke: all chaos cells ran with soak audits"

# scalesmoke is the massive-population gate: one 10^5-node duty-cycled
# trial per width arm on the region-sharded core, with oracle sampling
# (misdelivery / freshness audits) always on — Check() fails the run on
# any violation. The trial runs once sequentially and once on all CPUs;
# stdout must be byte-identical, which is the sharded core's determinism
# contract enforced end to end on every `make check`.
scalesmoke:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure massive -nodes 100000 -duration 5s \
		-parallel 1 > profiles/massive_p1.txt
	$(GO) run ./cmd/retri-experiments -figure massive -nodes 100000 -duration 5s \
		-parallel 0 > profiles/massive_p0.txt
	cmp profiles/massive_p1.txt profiles/massive_p0.txt
	@echo "scalesmoke: 100k-node sharded trial byte-stable across -parallel"

# multihopsmoke is the multi-hop regional-dynamics gate: all three arms
# (fixed, adaptive-turnover, dynaddr) on a short trial with the always-on
# oracle audit — any misdelivery or freshness violation on the relayed
# wire fails the run — once sequentially and once on all CPUs, with
# byte-identical stdout as the determinism contract.
multihopsmoke:
	mkdir -p profiles
	$(GO) run ./cmd/retri-experiments -figure multihop -trials 2 -duration 10s \
		-parallel 1 > profiles/multihop_p1.txt
	$(GO) run ./cmd/retri-experiments -figure multihop -trials 2 -duration 10s \
		-parallel 0 > profiles/multihop_p0.txt
	cmp profiles/multihop_p1.txt profiles/multihop_p0.txt
	@echo "multihopsmoke: all arms audited, byte-stable across -parallel"
