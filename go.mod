module retri

go 1.22
