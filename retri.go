// Package retri is a library implementation of Random, Ephemeral
// TRansaction Identifiers (RETRI) and Address-Free Fragmentation (AFF),
// reproducing Elson & Estrin, "Random, Ephemeral Transaction Identifiers
// in Dynamic Sensor Networks" (ICDCS 2001).
//
// The core idea: wherever a protocol needs a guaranteed-unique identifier,
// draw a short, probabilistically unique identifier instead, fresh for
// each transaction. Collisions become ordinary loss; identifier size then
// scales with the network's transaction density T rather than its total
// size.
//
// The package re-exports three layers:
//
//   - The analytic model (Section 4): EStatic, PSuccess, EAFF,
//     OptimalIdentifierBits.
//   - The RETRI core: identifier Spaces and Selectors (uniform, listening,
//     sequential).
//   - A simulated sensor network running the AFF fragmentation service
//     over a broadcast radio (Section 5's testbed, in software): see
//     Network.
//
// # Quick start
//
//	net := retri.NewNetwork(retri.WithSeed(42))
//	a, _ := net.AddNode(1)
//	b, _ := net.AddNode(2)
//	b.OnPacket(func(p []byte) { fmt.Printf("got %d bytes\n", len(p)) })
//	a.Send([]byte("hello over 27-byte frames"))
//	net.Run()
package retri

import (
	"retri/internal/core"
	"retri/internal/model"
)

// Space is an identifier pool of 2^Bits values.
type Space = core.Space

// Selector chooses the identifier for each new transaction.
type Selector = core.Selector

// Selector implementations.
type (
	// UniformSelector draws identifiers uniformly at random — the case
	// analysed by the paper's Equation 4.
	UniformSelector = core.UniformSelector
	// ListeningSelector avoids identifiers heard within the adaptive 2T
	// window (Section 3.2's listening heuristic).
	ListeningSelector = core.ListeningSelector
	// SequentialSelector cycles deterministically; an ablation control,
	// not a recommended configuration.
	SequentialSelector = core.SequentialSelector
)

// NewSpace validates bits (1..32) and returns the identifier space.
func NewSpace(bits int) (Space, error) { return core.NewSpace(bits) }

// MustSpace is NewSpace for compile-time-constant widths; it panics on an
// invalid width.
func MustSpace(bits int) Space { return core.MustSpace(bits) }

// EStatic is the paper's Equation 2: efficiency of static allocation,
// D/(D+H) for D data bits behind an H-bit header.
func EStatic(dataBits, headerBits int) float64 {
	return model.EStatic(dataBits, headerBits)
}

// PSuccess is Equation 4: the probability a transaction's uniformly drawn
// H-bit identifier survives a transaction density of t.
func PSuccess(headerBits int, t float64) float64 {
	return model.PSuccess(headerBits, t)
}

// CollisionRate is 1 - PSuccess.
func CollisionRate(headerBits int, t float64) float64 {
	return model.CollisionRate(headerBits, t)
}

// EAFF is Equation 3: expected AFF efficiency at data size D, identifier
// width H and transaction density t.
func EAFF(dataBits, headerBits int, t float64) float64 {
	return model.EAFF(dataBits, headerBits, t)
}

// OptimalIdentifierBits searches H in [1, maxBits] for the width
// maximizing EAFF — the peak of the paper's Figure 1 curves.
func OptimalIdentifierBits(dataBits int, t float64, maxBits int) (bits int, efficiency float64) {
	return model.OptimalBits(dataBits, t, maxBits)
}

// PSuccessPoisson extends Equation 4 to non-uniform transaction lengths
// (the paper's Section 8 future work): Poisson arrivals at density t with
// exponentially distributed durations.
func PSuccessPoisson(headerBits int, t float64) float64 {
	return model.PSuccessPoisson(headerBits, t)
}

// PSuccessListening is a first-order model of the Section 3.2 listening
// heuristic: a window of w recently heard identifiers is avoided outright,
// leaving only later arrivals drawing from the reduced pool.
func PSuccessListening(headerBits int, t float64, window int) float64 {
	return model.PSuccessListening(headerBits, t, window)
}
